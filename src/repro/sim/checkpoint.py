"""Engine/network checkpoint & restore for long steady-state runs.

A checkpoint is one pickle of the **entire live object graph** — the
:class:`~repro.sim.engine.Engine` (heap, timer wheel, event seq, clock),
the :class:`~repro.net.topology.Network` (switches, ports, in-flight
packets, transports, stats) and any caller state (e.g. the
:class:`repro.service.ServiceEmulator`) — taken at a quiescent
sim-time boundary (between events, right after ``engine.run(until=t)``
returns). Pickling the whole graph in one pass preserves every shared
reference through the pickle memo, so a restored run continues
**bit-identically**: same event order, same RNG draws, same counters —
the contract the determinism-fingerprint gate
(``tools/check_service_checkpoint.py``, ``tests/test_checkpoint.py``)
enforces.

Restrictions (enforced with clear errors, documented in
``docs/SERVICE.md``):

- **pure backend only** — the compiled backend's ``CEngine`` and
  per-device C kernels hold process-local state that cannot pickle.
  Fingerprints are bit-identical across backends, so a pure-backend
  restore still reproduces a compiled uninterrupted run's fingerprint;
- every callback reachable from the engine heap must be a module-level
  function, bound method or picklable callable class — **no closures
  or lambdas**. The scenario/service run paths honor this (see e.g.
  ``EcnStreamFactory`` in ``repro.experiments.scenarios``); telemetry
  (open file handles) and fault schedules (interceptor closures) are
  refused up front rather than failing deep inside pickle.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Any, Dict, Optional

from repro.version import __version__

#: On-disk payload schema; bump on layout changes.
CHECKPOINT_SCHEMA = 1

#: Default checkpoint file name inside a checkpoint directory.
CHECKPOINT_FILE = "checkpoint.pkl"


class CheckpointError(RuntimeError):
    """Checkpoint could not be taken, written, read or validated."""


def _require_pure_engine(engine) -> None:
    from repro.sim.engine import Engine

    if not isinstance(engine, Engine):
        raise CheckpointError(
            f"checkpoint requires the pure backend; the active engine is "
            f"{type(engine).__module__}.{type(engine).__name__} (compiled "
            f"kernels hold unpicklable C state). Run with TLT_BACKEND=pure — "
            f"fingerprints are bit-identical across backends, so a pure "
            f"restore reproduces a compiled run's result.")


def save(path: str, net, extra: Optional[Dict[str, Any]] = None,
         key: Optional[str] = None) -> str:
    """Serialize ``net`` (+ ``extra`` caller state) to ``path``.

    ``key`` is an opaque configuration fingerprint (the job runner's
    cache key); :func:`load` refuses a checkpoint whose key does not
    match, so a resumed run can never silently continue a *different*
    scenario. Returns the final path (written atomically).
    """
    _require_pure_engine(net.engine)
    payload = {
        "schema": CHECKPOINT_SCHEMA,
        "version": __version__,
        "key": key,
        "sim_time_ns": net.engine.now,
        "events_processed": net.engine.events_processed,
        "state": {"net": net, "extra": extra or {}},
    }
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(
            f"simulation state does not pickle ({type(exc).__name__}: {exc}); "
            f"a closure or open handle is reachable from the engine heap — "
            f"see repro.sim.checkpoint's restrictions") from exc
    directory = os.path.dirname(os.path.abspath(path)) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, prefix=".ckpt-")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return path


def load(path: str, expect_key: Optional[str] = None) -> Dict[str, Any]:
    """Read a checkpoint payload back; validates schema and ``key``.

    Returns the payload dict: ``state`` holds ``net`` and ``extra``
    with all shared references intact; ``sim_time_ns`` /
    ``events_processed`` are the boundary the run resumes from.
    """
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: unknown checkpoint schema "
            f"{payload.get('schema') if isinstance(payload, dict) else payload!r}")
    if expect_key is not None and payload.get("key") not in (None, expect_key):
        raise CheckpointError(
            f"{path}: checkpoint belongs to a different scenario config "
            f"(key {payload.get('key')!r} != expected {expect_key!r})")
    return payload


def default_path(directory: str) -> str:
    """The canonical checkpoint file inside ``directory``."""
    return os.path.join(directory, CHECKPOINT_FILE)
