"""Hot-path backend selection: pure-Python vs compiled kernels.

The simulator's inner loops — the engine event loop, link
serialization/delivery, and the switch enqueue/dequeue/MMU fast path —
exist in two implementations behind this module:

``pure``
    The reference implementation (:class:`repro.sim.engine.Engine` and
    the Python methods of ``repro.net.link`` / ``repro.switchsim``).
    Zero dependencies, always available, and the semantic baseline the
    determinism fingerprints are pinned against.

``compiled``
    A hand-written CPython extension (``repro.sim._ckernel``, built by
    ``setup.py``/``pyproject.toml``) providing a drop-in C engine and
    per-instance C kernels bound onto switches, hosts and ports at
    network-build time. It honors the exact same observable contract —
    the raw ``(time, seq, fn, args)`` / ``(time, seq, Event)`` tuple
    heap layout, the ``WIRE_SEQ_BASE`` wire ordering, the
    events-processed count — so fingerprints are bit-identical across
    backends (CI-gated). When the build is absent the selection falls
    back to ``pure`` with a one-time warning.

Selection: ``TLT_BACKEND=pure|compiled`` in the environment, or
:func:`set_backend` for programmatic control (tests, shard workers —
every shard of a run must use the coordinator's backend). The factory
:func:`create_engine` is what ``repro.net.topology`` builds networks
on; :func:`optimize_network` is the build-time hook that binds the
compiled kernels (a no-op on ``pure``).
"""

from __future__ import annotations

import os
import warnings
from typing import Optional

from repro.net.link import Port
from repro.sim.engine import Engine

#: Names accepted by ``TLT_BACKEND`` / :func:`set_backend`.
BACKENDS = ("pure", "compiled")

#: Programmatic override (takes precedence over the environment).
_forced: Optional[str] = None

#: Only warn once per process about a missing compiled build.
_warned_fallback = False

_ckernel = None
_ckernel_checked = False


def _compiled_module():
    """The ``_ckernel`` extension module, or ``None`` when not built."""
    global _ckernel, _ckernel_checked
    if not _ckernel_checked:
        _ckernel_checked = True
        try:
            from repro.sim import _ckernel as module
        except ImportError:
            module = None
        _ckernel = module
    return _ckernel


def compiled_available() -> bool:
    """True when the compiled extension is importable."""
    return _compiled_module() is not None


def available_backends() -> tuple:
    return BACKENDS if compiled_available() else ("pure",)


def set_backend(name: Optional[str]) -> None:
    """Force a backend for this process (``None`` restores env selection).

    Raises :class:`ValueError` for unknown names and
    :class:`RuntimeError` when ``compiled`` is requested but the
    extension is not built — explicit requests fail loudly; only the
    environment-variable path falls back silently (with a warning).
    """
    global _forced
    if name is None:
        _forced = None
        return
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    if name == "compiled" and not compiled_available():
        raise RuntimeError(
            "compiled backend requested but repro.sim._ckernel is not built "
            "(run `python setup.py build_ext --inplace` or install with the "
            "[compiled] extra)"
        )
    _forced = name


def current_backend() -> str:
    """Resolve the active backend name (with graceful env fallback)."""
    global _warned_fallback
    if _forced is not None:
        return _forced
    requested = os.environ.get("TLT_BACKEND", "") or "pure"
    if requested not in BACKENDS:
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                f"TLT_BACKEND={requested!r} is not a known backend "
                f"{BACKENDS}; using pure",
                RuntimeWarning,
                stacklevel=2,
            )
        return "pure"
    if requested == "compiled" and not compiled_available():
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                "TLT_BACKEND=compiled but repro.sim._ckernel is not built; "
                "falling back to the pure-Python backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return "pure"
    return requested


def create_engine():
    """Engine factory: the single construction point for production
    engines (``repro.net.topology._new_network`` and benchmarks)."""
    if current_backend() == "compiled":
        return _compiled_module().CEngine()
    return Engine()


#: Transport modules whose ``alloc_packet`` global gets swapped for the
#: compiled allocator. Patched/restored at network-build time so an
#: in-process backend switch (tests, A/B harnesses) keeps ``pure`` runs
#: on the all-Python allocator.
_ALLOC_MODULES = ("repro.transport.base", "repro.transport.roce")
_alloc_patched = False


def _bind_fast_alloc(ck) -> None:
    global _alloc_patched
    import importlib

    for name in _ALLOC_MODULES:
        setattr(importlib.import_module(name), "alloc_packet", ck.alloc_packet)
    _alloc_patched = True


def _unbind_fast_alloc() -> None:
    global _alloc_patched
    if not _alloc_patched:
        return
    import importlib

    from repro.net.packet import alloc_packet

    for name in _ALLOC_MODULES:
        setattr(importlib.import_module(name), "alloc_packet", alloc_packet)
    _alloc_patched = False


def optimize_network(net) -> int:
    """Bind compiled kernels onto a freshly built network.

    Called at the end of every topology builder. On the ``pure``
    backend (or for devices the compiled fast path does not cover —
    non-default admission policies keep their Python pipeline) this
    binds nothing. Returns the number of objects that received compiled
    kernels (used by tests and the profiler's backend note).

    Kernel binding is shadowing, not replacement: the Python methods
    stay reachable on the class, ``Switch.set_auditor`` still swaps the
    audited Python variants in and out, and ``repro.sim.sharding``
    rebinds ``port._tx_cb`` after retargeting a cut port to
    :class:`~repro.sim.sharding.CutPort` (compiled kernels are bound
    only to exact :class:`~repro.net.link.Port` instances).
    """
    if current_backend() != "compiled":
        _unbind_fast_alloc()
        return 0
    ck = _compiled_module()
    _bind_fast_alloc(ck)
    bound = 0
    for switch in net.switches:
        if switch._default_policy:
            kernel = ck.SwitchKernel(switch)
            switch._receive_fast = kernel.receive
            switch._poll_fast = kernel.poll
            # Rebuild the active receive/poll bindings through the
            # normal path so the audited variants keep working.
            switch.set_auditor(switch.audit)
            bound += 1
    for host in net.hosts:
        kernel = ck.HostKernel(host)
        host.send = kernel.send
        host.poll = kernel.poll
        host._sink_receive = kernel.sink
        host._set_base_receive(kernel.sink)
        bound += 1
    for device in list(net.hosts) + list(net.switches):
        for port in device.ports:
            if type(port) is Port and port._batched:
                kernel = ck.PortKernel(port)
                port._tx_cb = kernel.tx_done
                port._drain_cb = kernel.drain
                bound += 1
    return bound
