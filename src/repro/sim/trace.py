"""Packet tracing: a debugging tool for simulation runs.

A :class:`PacketTracer` wraps device receive paths (zero cost unless
attached) and records one line per observed packet event. Filter by
flow to follow a single connection through the fabric::

    from repro.sim.trace import PacketTracer

    tracer = PacketTracer(net, flow_ids={42})
    ... run ...
    print(tracer.to_text())
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.net.packet import set_pooling


class TraceEvent:
    """One observed packet arrival at a device."""

    __slots__ = ("time_ns", "device", "kind", "seq", "ack", "flow_id", "mark", "color")

    def __init__(self, time_ns: int, device: str, packet) -> None:
        self.time_ns = time_ns
        self.device = device
        self.kind = packet.kind.name
        self.seq = packet.seq
        self.ack = packet.ack
        self.flow_id = packet.flow_id
        self.mark = packet.mark.name
        self.color = packet.color.name

    def format(self) -> str:
        return (
            f"{self.time_ns / 1000:12.3f}us  {self.device:<10s} flow={self.flow_id:<5d} "
            f"{self.kind:<5s} seq={self.seq:<8d} ack={self.ack:<8d} "
            f"{self.color:<5s} {self.mark}"
        )


class PacketTracer:
    """Records packet arrivals at every device of a network."""

    def __init__(self, net, flow_ids: Optional[Iterable[int]] = None, max_events: int = 100_000):
        self.engine = net.engine
        self.flow_ids: Optional[Set[int]] = set(flow_ids) if flow_ids is not None else None
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._wrapped: List[Tuple[object, object]] = []
        # Trace events hold live Packet references; stop the pool from
        # reinitialising them under us while the tracer is attached.
        set_pooling(False)
        for device in list(net.switches) + list(net.hosts):
            self._wrap(device)

    def _wrap(self, device) -> None:
        original = device.receive

        def tapped(packet, in_port, _original=original, _name=device.name):
            if (self.flow_ids is None or packet.flow_id in self.flow_ids) and len(
                self.events
            ) < self.max_events:
                self.events.append(TraceEvent(self.engine.now, _name, packet))
            _original(packet, in_port)

        self._wrapped.append((device, original))
        device.receive = tapped

    def detach(self) -> None:
        """Restore the original receive paths."""
        for device, original in self._wrapped:
            device.receive = original
        self._wrapped.clear()

    def to_text(self) -> str:
        return "\n".join(event.format() for event in self.events)

    def flows_seen(self) -> Set[int]:
        return {event.flow_id for event in self.events}

    def __len__(self) -> int:
        return len(self.events)
