"""Packet tracing: a debugging tool for simulation runs.

A :class:`PacketTracer` installs a tap interceptor on every device's
receive chain (:meth:`repro.net.node.Device.add_interceptor` — zero
cost unless attached, composes with fault injection and audit) and
records one line per observed packet event. Filter by flow to follow a
single connection through the fabric::

    from repro.sim.trace import PacketTracer

    tracer = PacketTracer(net, flow_ids={42})
    ... run ...
    print(tracer.to_text())
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.net.node import Interceptor
from repro.net.packet import set_pooling


class TraceEvent:
    """One observed packet arrival at a device."""

    __slots__ = ("time_ns", "device", "kind", "seq", "ack", "flow_id", "mark", "color")

    def __init__(self, time_ns: int, device: str, packet) -> None:
        self.time_ns = time_ns
        self.device = device
        self.kind = packet.kind.name
        self.seq = packet.seq
        self.ack = packet.ack
        self.flow_id = packet.flow_id
        self.mark = packet.mark.name
        self.color = packet.color.name

    def format(self) -> str:
        return (
            f"{self.time_ns / 1000:12.3f}us  {self.device:<10s} flow={self.flow_id:<5d} "
            f"{self.kind:<5s} seq={self.seq:<8d} ack={self.ack:<8d} "
            f"{self.color:<5s} {self.mark}"
        )


class _TraceTap(Interceptor):
    """Per-device tap: records matching packets, always forwards."""

    def __init__(self, tracer: "PacketTracer", device_name: str):
        self.tracer = tracer
        self.device_name = device_name

    def on_packet(self, packet, in_port, forward) -> None:
        tracer = self.tracer
        if (tracer.flow_ids is None or packet.flow_id in tracer.flow_ids) and len(
            tracer.events
        ) < tracer.max_events:
            tracer.events.append(
                TraceEvent(tracer.engine.now, self.device_name, packet)
            )
        forward(packet, in_port)


class PacketTracer:
    """Records packet arrivals at every device of a network."""

    def __init__(self, net, flow_ids: Optional[Iterable[int]] = None, max_events: int = 100_000):
        self.engine = net.engine
        self.flow_ids: Optional[Set[int]] = set(flow_ids) if flow_ids is not None else None
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self._taps: List[Tuple[object, _TraceTap]] = []
        # A traced packet's fields are copied at observation time, but
        # handlers downstream may still be inspecting packets the trace
        # points at; keep pooled reuse off while tracing.
        set_pooling(False)
        for device in list(net.switches) + list(net.hosts):
            tap = _TraceTap(self, device.name)
            device.add_interceptor(tap)
            self._taps.append((device, tap))

    def detach(self) -> None:
        """Remove the taps from every device."""
        for device, tap in self._taps:
            device.remove_interceptor(tap)
        self._taps.clear()

    def to_text(self) -> str:
        return "\n".join(event.format() for event in self.events)

    def flows_seen(self) -> Set[int]:
        return {event.flow_id for event in self.events}

    def __len__(self) -> int:
        return len(self.events)
