"""Spatial sharding: one fabric, many engines, bit-exact results.

Partitions a leaf-spine scenario across ``N`` shard workers — each a
full :class:`repro.sim.engine.Engine` in its own process (or inline,
see below) — synchronized by *conservative lookahead*: every cut link
(a link whose endpoints live in different shards) has a propagation
delay, and the minimum cut-link delay ``L`` bounds how far any shard
may causally outrun the others. The coordinator repeatedly grants all
workers a window ``[now, U]`` with ``U = min(target, gmin + L - 1)``,
where ``gmin`` is the earliest pending event or staged cross-shard
message anywhere; a packet emitted at ``t >= gmin`` arrives at another
shard at ``t + delay >= gmin + L > U``, so cross-shard traffic is
always deliverable at the *next* barrier and no shard ever schedules
into its past.

Design choices that make the sharded run reproduce the single-core
fingerprint bit-for-bit (CI-enforced, ``tests/test_determinism.py``):

- **Full topology replica per shard.** Every worker builds the entire
  network with identical construction order, names, seeds and RNG
  registry, and runs the *identical* workload ``schedule()`` — flow
  ids, specs and RNG draws agree across shards by construction.
  Ownership (ToR ``i`` -> shard ``i % N``, spine ``j`` -> shard
  ``(num_tors + j) % N``, hosts follow their ToR) only decides which
  devices carry live traffic; unowned replicas are inert because every
  path into them crosses a cut link first.
- **Cut-link proxies.** A locally-owned port whose peer is remote is
  retargeted to :class:`CutPort` via ``__class__`` assignment (same
  slot layout as :class:`~repro.net.link.Port`): instead of scheduling
  local delivery it appends ``(cut_id, arrival_ns, wire_seq, kind,
  wire)`` to the shard outbox, using the packet pool's flat tuple
  encoding (:func:`repro.net.packet.packet_to_wire`).
- **Decomposable tie-break.** The engine orders same-nanosecond wire
  arrivals by the ``WIRE_SEQ_BASE`` key — ``(emitting port's
  construction rank, per-port FIFO index)`` — not by global push order
  (see ``repro.net.link``). The key is a pure function of state the
  emitting shard owns, so a :class:`CutPort` stamps the *identical*
  heap key the single-core run would have used, and the receiving
  worker pushes the staged entry verbatim: cross-shard arrivals land
  in exactly the single-core position at any scale, with no
  reconstruction. The coordinator stages messages sorted by
  ``(arrival_ns, wire_seq)`` — the heap's own order, independent of
  worker timing, process scheduling or pipe arrival order.
- **Coordinator-driven liveness.** The queue sampler and the drain
  loop of :func:`repro.experiments.scenarios.run_scenario` depend on
  *global* flow completion, which no single shard can see. Workers
  report completions at each barrier; the coordinator replays the
  exact single-core predicates (sampler tick cadence, 50 ms drain
  chunks, hard cap) and tells workers when the sampler dies. A window
  never extends past ``pending_tick + L - 1 < pending_tick +
  interval``, so a tick whose reschedule must be revoked is always
  still pending at the next barrier — retroactive stop is safe.
- **Event-count parity.** Replica-side bookkeeping events (flow
  creation in non-source shards, secondary fault applications) are
  counted as artifacts and subtracted, as are the duplicate sampler
  ticks of shards 1..N-1, so the merged ``events_processed`` equals
  the single-core count exactly.

Every transport family shards exactly, including the RoCE RED/ECN
family: each switch owns a name-seeded ECN RNG stream
(``derive_seed(seed, "ecn.<switch>")`` in ``build_network``), so every
replica derives the same streams and only the owning shard draws from
them — no cross-shard RNG interleaving exists to replay. Known limits
(documented in docs/PERFORMANCE.md): audited or telemetry-attached
runs add per-shard observer events to the merged event count.

Workers default to one OS process per shard (fork-preferring, same
policy as the experiment pool). When sharding is requested *inside* a
daemonic pool worker — which cannot spawn children — or when
``TLT_SHARD_INLINE=1``, the same worker objects run inline in the
coordinator process: identical barrier schedule, identical results,
no parallelism (used by tests and nested sweeps).
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import time
from bisect import bisect_left, insort
from heapq import heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.net.link import Port
from repro.net.packet import packet_from_wire, packet_to_wire, recycle
from repro.sim.engine import _GC_RUN_THRESHOLDS
from repro.sim.units import MICROS, MILLIS, tx_time_ns

#: Outbox/staged message kinds.
MSG_PACKET = 0
MSG_PAUSE = 1

#: NetStats integer counters summed verbatim across shards. Each is
#: incremented only where real traffic flows (owned devices / owned
#: senders), so the shard-wise sums partition the single-core totals.
_COUNTER_FIELDS = (
    "green_data_packets",
    "red_data_packets",
    "green_data_bytes",
    "red_data_bytes",
    "clocking_bytes",
    "clocking_packets",
    "drops_green",
    "drops_red",
    "drops_green_data",
    "drops_red_data",
    "drops_green_ctrl",
    "drops_red_ctrl",
    "drop_bytes",
    "drops_fault",
    "drops_fault_green",
    "drops_fault_red",
    "drops_fault_green_data",
    "drops_fault_bytes",
    "ecn_marks",
    "pause_frames",
    "resume_frames",
    "timeouts",
    "fast_retransmits",
)

_RESERVOIR_FIELDS = ("rtt_samples_fg", "rtt_samples_bg", "delivery_samples")


class ShardPlan:
    """Deterministic device -> shard ownership for one leaf-spine fabric.

    ToR subtrees (a ToR and its hosts) round-robin across shards;
    spines round-robin with an offset so small fabrics don't pile the
    spines onto shard 0. Shards may be empty when ``num_shards``
    exceeds the number of switch groups — they still run (inert
    replicas), keeping the barrier protocol uniform.
    """

    def __init__(self, num_shards: int, num_spines: int, num_tors: int, hosts_per_tor: int):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self.num_spines = num_spines
        self.num_tors = num_tors
        self.hosts_per_tor = hosts_per_tor

    def tor_owner(self, tor_idx: int) -> int:
        return tor_idx % self.num_shards

    def spine_owner(self, spine_idx: int) -> int:
        return (self.num_tors + spine_idx) % self.num_shards

    def host_owner(self, host_id: int) -> int:
        return self.tor_owner(host_id // self.hosts_per_tor)

    def device_owner(self, device) -> int:
        host_id = getattr(device, "host_id", None)
        if host_id is not None:
            return self.host_owner(host_id)
        switch_id = device.switch_id
        if switch_id < self.num_tors:
            return self.tor_owner(switch_id)
        return self.spine_owner(switch_id - self.num_tors)


class CutPort(Port):
    """A port whose peer lives in another shard.

    Same object layout as :class:`Port` (no extra slots), installed by
    ``__class__`` assignment on an already-connected port. Serialization
    (:meth:`Port.kick` and the inline continuation below) is untouched;
    only the hand-off differs: instead of pushing the propagation event
    onto the local heap, the finished packet is flat-encoded into the
    shard outbox stamped with its arrival time at the remote peer and
    its wire sequence key (the same ``WIRE_SEQ_BASE``-space key
    ``Port._tx_done`` would have used on a single engine — see
    ``repro.net.link``), and the local object recycled. PFC
    PAUSE/RESUME frames cross the same way (kind :data:`MSG_PAUSE`).
    """

    __slots__ = ()

    def _tx_done(self, packet) -> None:
        engine = self.engine
        seq = self.wire_seq
        self.wire_seq = seq + 1
        self.shard_out.append(
            (self.cut_id, engine.now + self.delay_ns, seq, MSG_PACKET, packet_to_wire(packet))
        )
        recycle(packet)
        self.busy = False
        # Inlined kick(), exactly as the base class.
        if self.paused or self.down:
            return
        packet = self.owner.poll(self)
        if packet is None:
            return
        self.busy = True
        self.tx_bytes += packet.size
        self.tx_packets += 1
        seq = engine._seq
        engine._seq = seq + 1
        heappush(
            engine._queue,
            (engine.now + tx_time_ns(packet.size, self.rate_bps), seq, self._tx_done, (packet,)),
        )

    def send_pause(self, duration_ns: int) -> None:
        seq = self.wire_seq
        self.wire_seq = seq + 1
        self.shard_out.append(
            (self.cut_id, self.engine.now + self.delay_ns, seq, MSG_PAUSE, duration_ns)
        )


class _ShardWorker:
    """One shard's replica: network, engine, workload and observers.

    Lives either in a forked worker process (driven by
    :func:`_worker_main` over a pipe) or inline in the coordinator.
    ``setup()`` mirrors the assembly phase of ``run_scenario`` —
    network, auditor, faults, transports, workloads, sampler,
    telemetry, GC freeze — then the coordinator steps it with
    ``window()`` and collects ``finish()``.
    """

    def __init__(
        self,
        config,
        num_shards: int,
        shard_index: int,
        manage_gc: bool = True,
        backend: Optional[str] = None,
    ):
        self.config = config
        self.num_shards = num_shards
        self.shard_index = shard_index
        self.manage_gc = manage_gc
        # The coordinator's resolved backend: every shard must run the
        # same engine/kernel implementation, even if the worker process
        # inherits a different TLT_BACKEND environment.
        self.backend = backend
        self.outbox: List[tuple] = []
        self.completions: List[Tuple[int, int]] = []
        self.artifact_events = 0
        self.sample_ticks = 0
        self.queue_samples: List[Tuple[int, int, int, int]] = []
        self._sampler_stopped = False
        self._sampler_event = None
        self._gc_saved = None
        self.auditor = None
        self.telemetry = None
        self.fault_controller = None

    # -- assembly ---------------------------------------------------------------

    def setup(self) -> Dict:
        from repro.audit import AuditConfig, Auditor
        from repro.experiments.scenarios import (
            _telemetry_run_id,
            build_network,
            make_transport_config,
        )
        from repro.faults.schedule import FaultController, FaultSchedule
        from repro.transport.registry import create_flow
        from repro.workload.background import BackgroundTraffic
        from repro.workload.distributions import DISTRIBUTIONS
        from repro.workload.incast import IncastTraffic

        config = self.config
        if config.topology != "leaf_spine":
            raise ValueError(
                f"sharding requires a leaf_spine topology, got {config.topology!r}"
            )
        from repro.sim import backend as backend_mod

        if self.backend is not None:
            backend_mod.set_backend(self.backend)
        net = self.net = build_network(config)
        engine = self.engine = net.engine
        scale = config.scale
        plan = self.plan = ShardPlan(
            self.num_shards, scale.num_spines, scale.num_tors, scale.hosts_per_tor
        )
        mine = self.shard_index

        # Cut registry: enumerate ports in deterministic construction
        # order so every shard assigns identical cut ids. The registry
        # holds the TX-side port object of every cut direction — in the
        # owning shard it becomes the live CutPort, everywhere else it
        # is the replica used to resolve the remote peer on delivery.
        cut_ports = self.cut_ports = []
        route: List[int] = []
        lookahead: Optional[int] = None
        for device in list(net.hosts) + list(net.switches):
            dev_owner = plan.device_owner(device)
            for port in device.ports:
                peer = port.peer
                if peer is None:
                    continue
                peer_owner = plan.device_owner(peer.owner)
                if peer_owner == dev_owner:
                    continue
                port.cut_id = len(cut_ports)
                cut_ports.append(port)
                route.append(peer_owner)
                if lookahead is None or port.delay_ns < lookahead:
                    lookahead = port.delay_ns
                if dev_owner == mine:
                    port.shard_out = self.outbox
                    port.__class__ = CutPort
                    # kick() pushes the _tx_cb slot (bound — possibly
                    # to a compiled kernel — at construction); rebind
                    # it so the outbox override actually runs.
                    port._tx_cb = port._tx_done

        if config.audit_enabled:
            self.auditor = Auditor(
                net, AuditConfig(dump_path=os.environ.get("TLT_AUDIT_DUMP") or None)
            )
            self.auditor.install()

        fault_spec = config.resolved_faults()
        if fault_spec is not None:
            schedule = FaultSchedule.from_spec(fault_spec)
            controller = self.fault_controller = FaultController(net, schedule)
            for event in schedule.events:
                involved, primary = self._fault_shards(event)
                if mine == primary:
                    engine.schedule_at(event.time_ns, controller._apply, event)
                elif mine in involved:
                    engine.schedule_at(event.time_ns, self._apply_secondary_fault, event)

        tconfig = make_transport_config(config)
        tlt_cfg = config.tlt_config if config.tlt else None
        host_owner = plan.host_owner

        def create(spec) -> None:
            src_local = host_owner(spec.src) == mine
            if not src_local:
                # This creation event executes once per shard but only
                # once in a single-core run: every non-source execution
                # is a replica artifact.
                self.artifact_events += 1
                if host_owner(spec.dst) != mine:
                    return
            spec.on_complete_rx = self._flow_completed
            sender, _receiver = create_flow(config.transport, net, spec, tconfig, tlt_cfg)
            if not src_local:
                # Receiver-only shard: keep the receiver (and an inert
                # FlowRecord for its end_rx_ns) but never let the
                # replica sender transmit.
                sender._start_event.cancel()
                net.stats.foreign_src_flows.add(spec.flow_id)

        end_of_traffic = 0
        total_flows = 0
        if config.enable_background:
            background = BackgroundTraffic(
                net,
                DISTRIBUTIONS[config.workload],
                create,
                load=config.load,
                num_flows=config.bg_flows
                if config.bg_flows is not None
                else config.scale.bg_flows,
                link_rate_bps=config.link_rate_bps,
            )
            background.schedule()
            total_flows += len(background.specs)
            end_of_traffic = max(end_of_traffic, background.end_of_arrivals_ns)

        if config.enable_incast:
            events = (
                config.incast_events
                if config.incast_events is not None
                else scale.incast_events
            )
            per_sender = (
                config.incast_flows_per_sender
                if config.incast_flows_per_sender is not None
                else scale.incast_flows_per_sender
            )
            interval = IncastTraffic.interval_for_share(
                config.fg_share,
                config.load,
                scale.num_hosts,
                config.link_rate_bps,
                config.incast_flow_size,
                per_sender,
                scale.num_hosts - 1,
            )
            incast = IncastTraffic(
                net,
                create,
                flow_size=config.incast_flow_size,
                flows_per_sender=per_sender,
                num_events=events,
                interval_ns=interval,
                start_ns=200 * MICROS,
            )
            incast.schedule()
            total_flows += len(incast.specs)
            if incast.specs:
                end_of_traffic = max(end_of_traffic, incast.specs[-1].start_ns)

        self.end_of_traffic = end_of_traffic
        horizon = end_of_traffic + config.drain_ns

        # Queue sampler: fires on the single-core cadence but always
        # tentatively reschedules — the liveness predicate is global,
        # so the *coordinator* replays it and revokes the pending tick
        # (via ``stop_sampler``) at the barrier after the tick where the
        # single-core sampler would have stopped. Lookahead guarantees
        # that pending tick cannot fire before the revocation arrives.
        self._sampler_event = engine.schedule(
            config.queue_sample_interval_ns, self._sample_queues
        )

        telemetry_spec = config.resolved_telemetry()
        if telemetry_spec is not None:
            from repro.telemetry import Telemetry, TelemetryConfig

            telemetry_config = TelemetryConfig.from_spec(telemetry_spec)
            base_run_id = telemetry_config.run_id or _telemetry_run_id(config)
            self.telemetry = Telemetry(
                net,
                telemetry_config,
                scenario=config,
                run_id=f"{base_run_id}_sh{mine}",
            )
            self.telemetry.install(
                active=lambda: engine.now < end_of_traffic or not self._sampler_stopped
            )
            if self.fault_controller is not None:
                self.telemetry.attach_faults(self.fault_controller)

        if self.manage_gc:
            gc.collect()
            gc.freeze()
            self._gc_saved = (gc.get_threshold(), gc.isenabled())
            gc.set_threshold(*_GC_RUN_THRESHOLDS)
            gc.disable()

        return {
            "backend": backend_mod.current_backend(),
            "route": route,
            "lookahead": lookahead,
            "end_of_traffic": end_of_traffic,
            "horizon": horizon,
            "hard_cap": config.hard_cap_ns or (horizon + 10 * config.drain_ns),
            "flows": total_flows,
            "interval": config.queue_sample_interval_ns,
            "next": engine.peek_time(),
            "pending": engine.pending,
        }

    # -- helpers ----------------------------------------------------------------

    def _fault_shards(self, event) -> Tuple[Set[int], int]:
        """Shards that must apply ``event`` locally, and the primary.

        The primary (the named device's owner) applies it exactly as a
        single-core run would. Link and switch failures also touch the
        *peer* port of each cut link, so the peer's owner applies the
        event too (a secondary, counted as an artifact); its replica-
        side half of the work is inert. Corruption and PFC storms act
        only on the named device.
        """
        plan = self.plan
        name, _, port_no = event.target.partition(":")
        device = self.net.device(name)
        primary = plan.device_owner(device)
        involved = {primary}
        if event.kind in ("link_down", "link_up") and port_no:
            port = device.ports[int(port_no)]
            if port.peer is not None:
                involved.add(plan.device_owner(port.peer.owner))
        elif event.kind in ("switch_down", "switch_up"):
            for port in device.ports:
                if port.peer is not None:
                    involved.add(plan.device_owner(port.peer.owner))
        return involved, primary

    def _apply_secondary_fault(self, event) -> None:
        self.artifact_events += 1
        self.fault_controller._apply(event)

    def _flow_completed(self, record) -> None:
        self.completions.append((self.engine.now, record.flow_id))

    def _sample_queues(self) -> None:
        tick = self.sample_ticks
        self.sample_ticks = tick + 1
        samples = self.queue_samples
        for sw_idx, switch in enumerate(self.net.switches):
            for q_idx, queue in enumerate(switch.queues):
                occ = queue.occupancy
                if occ:
                    samples.append((tick, sw_idx, q_idx, occ))
        if not self._sampler_stopped:
            self._sampler_event = self.engine.schedule(
                self.config.queue_sample_interval_ns, self._sample_queues
            )

    def _stop_sampler(self) -> None:
        if self._sampler_stopped:
            return
        self._sampler_stopped = True
        if self._sampler_event is not None:
            self._sampler_event.cancel()
            self._sampler_event = None

    def _restore_gc(self) -> None:
        if self._gc_saved is None:
            return
        thresholds, was_enabled = self._gc_saved
        self._gc_saved = None
        gc.unfreeze()
        gc.set_threshold(*thresholds)
        if was_enabled:
            gc.enable()

    # -- stepping ---------------------------------------------------------------

    def window(self, until: int, messages: List[tuple], stop_sampler: bool) -> Dict:
        """Apply staged cross-shard messages, run events through ``until``.

        Each message carries the emitting port's wire sequence key, so
        a remote arrival lands on the local heap as exactly the
        ``(time, seq, deliver, args)`` entry the single-core run would
        have pushed: same-nanosecond ordering against local events and
        against other remote arrivals is decided by the key alone, not
        by staging or scheduling order.
        """
        if stop_sampler:
            self._stop_sampler()
        engine = self.engine
        cut_ports = self.cut_ports
        queue = engine._queue
        for t, seq, cut_id, kind, payload in messages:
            port = cut_ports[cut_id]
            if kind == MSG_PACKET:
                heappush(queue, (t, seq, port._peer_deliver, (packet_from_wire(payload),)))
            else:
                peer = port.peer
                heappush(queue, (t, seq, peer.owner.receive_pause, (payload, peer)))
        engine.run_window(until)
        out = list(self.outbox)
        del self.outbox[:]  # CutPorts alias this list; clear in place
        done = self.completions
        self.completions = []
        return {
            "next": engine.peek_time(),
            "out": out,
            "done": done,
            "pending": engine.pending,
        }

    # -- teardown ---------------------------------------------------------------

    def finish(self) -> Dict:
        from repro.audit import AuditError

        self._restore_gc()
        try:
            if self.auditor is not None:
                self.auditor.final_check()
        except AuditError as error:
            if self.telemetry is not None:
                self.telemetry.on_audit_error(error)
            raise
        finally:
            if self.telemetry is not None:
                self.telemetry.finalize()
        net = self.net
        stats = net.stats
        flows = [
            (
                r.flow_id,
                r.src,
                r.dst,
                r.size,
                r.start_ns,
                r.group,
                r.end_rx_ns,
                r.end_ack_ns,
                r.timeouts,
                r.retx_bytes,
                r.tx_bytes,
                r.final_rto_ns,
                r.final_srtt_ns,
            )
            for r in stats.flows.values()
        ]
        return {
            "counters": {name: getattr(stats, name) for name in _COUNTER_FIELDS},
            "flows": flows,
            "foreign": sorted(stats.foreign_src_flows),
            "reservoirs": {
                name: (list(getattr(stats, name)._samples), getattr(stats, name).seen)
                for name in _RESERVOIR_FIELDS
            },
            "queue_samples": self.queue_samples,
            "ticks": self.sample_ticks,
            "events": self.engine.events_processed,
            "artifacts": self.artifact_events,
            "paused_ns": net.total_paused_ns(),
            # Flowlet/reroute counts: only the owning shard routes real
            # packets through a switch (replicas stay at zero), so the
            # cross-shard sum counts each switch exactly once.
            "path_churn": [
                sum(sw.fib.flowlets for sw in net.switches),
                sum(sw.fib.reroutes for sw in net.switches),
            ],
            "port_count": sum(
                len(d.ports) for d in list(net.switches) + list(net.hosts)
            ),
            "now": self.engine.now,
        }


# -- worker drivers --------------------------------------------------------------


def _worker_main(conn, config, num_shards: int, shard_index: int, backend: str) -> None:
    """Shard worker process body: setup, then serve barrier commands."""
    try:
        worker = _ShardWorker(config, num_shards, shard_index, backend=backend)
        conn.send(("ready", worker.setup()))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "win":
                conn.send(("ok", worker.window(msg[1], msg[2], msg[3])))
            elif op == "fin":
                conn.send(("done", worker.finish()))
                return
            else:  # "stop" or unknown: exit quietly
                return
    except BaseException:
        import traceback

        try:
            conn.send(("error", traceback.format_exc(limit=30)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _ProcHandle:
    """Pipe-connected shard worker process."""

    def __init__(self, ctx, config, num_shards: int, shard_index: int, backend: str):
        self.shard_index = shard_index
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child, config, num_shards, shard_index, backend),
            daemon=True,
        )
        self.proc.start()
        child.close()

    def send(self, msg) -> None:
        self.conn.send(msg)

    def recv(self):
        while not self.conn.poll(1.0):
            if not self.proc.is_alive():
                raise RuntimeError(
                    f"shard {self.shard_index} worker died "
                    f"(exit code {self.proc.exitcode})"
                )
        try:
            tag, payload = self.conn.recv()
        except (EOFError, OSError):
            raise RuntimeError(
                f"shard {self.shard_index} worker closed its pipe "
                f"(exit code {self.proc.exitcode})"
            ) from None
        if tag == "error":
            raise RuntimeError(
                f"shard {self.shard_index} worker failed:\n{payload}"
            )
        return payload

    def stop(self) -> None:
        try:
            self.conn.close()
        except Exception:
            pass
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=2)
            if self.proc.is_alive():
                self.proc.kill()
                self.proc.join(timeout=2)
        else:
            self.proc.join(timeout=2)


class _InlineHandle:
    """Same command protocol, worker runs in the coordinator process."""

    def __init__(self, worker: _ShardWorker):
        self.worker = worker
        self._reply = None

    def send(self, msg) -> None:
        op = msg[0]
        if op == "setup":
            self._reply = self.worker.setup()
        elif op == "win":
            self._reply = self.worker.window(msg[1], msg[2], msg[3])
        elif op == "fin":
            self._reply = self.worker.finish()

    def recv(self):
        reply, self._reply = self._reply, None
        return reply

    def stop(self) -> None:
        pass


def _use_inline() -> bool:
    flag = os.environ.get("TLT_SHARD_INLINE", "")
    if flag not in ("", "0"):
        return True
    # A daemonic pool worker (tlt-experiment --jobs N) cannot spawn
    # children; run the shards inline instead of crashing.
    return mp.current_process().daemon


# -- merged result shims ----------------------------------------------------------


class _ShardedEngine:
    """Engine facade over the merged run (events + final clock)."""

    def __init__(self, events_processed: int, now: int):
        self.events_processed = events_processed
        self.now = now


class _ShardedNetwork:
    """Network facade exposing the merged stats and pause accounting.

    ``hosts``/``switches`` are empty: the devices live in the worker
    processes and die with them; result consumers (metrics reducers,
    fingerprints, reports) only read stats and aggregates.
    """

    def __init__(self, engine: _ShardedEngine, stats, paused_ns: int, port_count: int,
                 path_churn=(0, 0)):
        self.engine = engine
        self.stats = stats
        self.hosts: list = []
        self.switches: list = []
        self._paused_ns = paused_ns
        self._port_count = port_count
        #: (flowlets, reroutes) summed across shards; summary_row reads
        #: these since the per-switch FIBs died with the workers.
        self.fib_flowlets, self.fib_reroutes = path_churn

    def total_pause_frames(self) -> int:
        return self.stats.pause_frames

    def total_paused_ns(self) -> int:
        return self._paused_ns

    def avg_pause_fraction(self, duration_ns: int) -> float:
        if not self._port_count or duration_ns <= 0:
            return 0.0
        return self._paused_ns / (self._port_count * duration_ns)


def _merge(config, payloads: List[Dict], duration_ns: int):
    """Deterministically fold per-shard payloads into one ScenarioResult."""
    from repro.experiments.scenarios import ScenarioResult
    from repro.stats.collector import FlowRecord, NetStats

    stats = NetStats(seed=config.seed)
    for name in _COUNTER_FIELDS:
        setattr(stats, name, sum(p["counters"][name] for p in payloads))

    # Flow records: the source-owner shard holds the canonical record
    # (sender-side counters); a cross-shard flow's end_rx_ns lives only
    # in the destination shard's inert replica and is overlaid.
    canonical: Dict[int, tuple] = {}
    receiver_end: Dict[int, int] = {}
    for p in payloads:
        foreign = set(p["foreign"])
        for rec in p["flows"]:
            fid = rec[0]
            if fid in foreign:
                if rec[6] is not None:
                    receiver_end[fid] = rec[6]
            else:
                canonical[fid] = rec
    for fid in sorted(canonical):
        t = canonical[fid]
        record = FlowRecord(t[0], t[1], t[2], t[3], t[4], t[5])
        record.end_rx_ns = t[6] if t[6] is not None else receiver_end.get(fid)
        record.end_ack_ns = t[7]
        record.timeouts = t[8]
        record.retx_bytes = t[9]
        record.tx_bytes = t[10]
        record.final_rto_ns = t[11]
        record.final_srtt_ns = t[12]
        stats.flows[fid] = record

    # Reservoirs: each sample is recorded by exactly one shard (RTT by
    # the live sender, delivery by the live receiver), so shard-order
    # concatenation is the exact single-core multiset as long as no
    # reservoir overflowed its capacity (documented limit).
    for name in _RESERVOIR_FIELDS:
        reservoir = getattr(stats, name)
        for p in payloads:
            samples, seen = p["reservoirs"][name]
            reservoir._samples.extend(samples)
            reservoir.seen += seen

    # Queue samples: per-shard entries are (tick, switch_idx, queue_idx,
    # occupancy); sorting recovers the single-core iteration order
    # (switches then queues, per tick). Replica queues are always empty
    # and never sampled, so there are no duplicates.
    merged_q = sorted(tup for p in payloads for tup in p["queue_samples"])
    queue_samples = [occ for (_t, _s, _q, occ) in merged_q]

    ticks = [p["ticks"] for p in payloads]
    events = (
        sum(p["events"] for p in payloads)
        - sum(p["artifacts"] for p in payloads)
        - (sum(ticks) - ticks[0])
    )
    engine = _ShardedEngine(events, duration_ns)
    net = _ShardedNetwork(
        engine,
        stats,
        paused_ns=sum(p["paused_ns"] for p in payloads),
        port_count=payloads[0]["port_count"],
        path_churn=(
            sum(p["path_churn"][0] for p in payloads),
            sum(p["path_churn"][1] for p in payloads),
        ),
    )
    return ScenarioResult(config, net, duration_ns, queue_samples, None, None, None)


# -- coordinator -------------------------------------------------------------------


def run_scenario_sharded(config, num_shards: int):
    """Run one scenario across ``num_shards`` conservative-lookahead shards.

    Bit-exact contract: for supported configurations (see module
    docstring) the returned :class:`ScenarioResult` carries the same
    stats, duration, queue samples and event count as
    ``run_scenario(config)`` on a single engine.
    """
    from repro.experiments.perf import TALLY

    if num_shards < 2:
        raise ValueError(f"run_scenario_sharded needs >= 2 shards, got {num_shards}")
    from repro.sim import backend as backend_mod

    wall_started = time.perf_counter()
    backend_name = backend_mod.current_backend()
    inline = _use_inline()
    handles: List = []
    gc_saved = None

    def restore_gc() -> None:
        nonlocal gc_saved
        if gc_saved is None:
            return
        thresholds, was_enabled = gc_saved
        gc_saved = None
        gc.unfreeze()
        gc.set_threshold(*thresholds)
        if was_enabled:
            gc.enable()

    try:
        if inline:
            handles = [
                _InlineHandle(
                    _ShardWorker(
                        config, num_shards, i, manage_gc=False, backend=backend_name
                    )
                )
                for i in range(num_shards)
            ]
            for handle in handles:
                handle.send(("setup",))
            metas = [handle.recv() for handle in handles]
            # One freeze for all inline shards (the per-process dance
            # run_scenario does, hoisted around the barrier loop).
            gc.collect()
            gc.freeze()
            gc_saved = (gc.get_threshold(), gc.isenabled())
            gc.set_threshold(*_GC_RUN_THRESHOLDS)
            gc.disable()
        else:
            from repro.experiments.parallel import _mp_context

            ctx = _mp_context()
            handles = [
                _ProcHandle(ctx, config, num_shards, i, backend_name)
                for i in range(num_shards)
            ]
            metas = [handle.recv() for handle in handles]

        meta = metas[0]
        for i, other in enumerate(metas[1:], 1):
            if other["flows"] != meta["flows"] or len(other["route"]) != len(meta["route"]):
                raise RuntimeError(
                    f"shard {i} replica diverged during setup "
                    f"(flows {other['flows']} vs {meta['flows']})"
                )
        for i, other in enumerate(metas):
            if other["backend"] != backend_name:
                raise RuntimeError(
                    f"shard {i} selected backend {other['backend']!r}, "
                    f"coordinator expects {backend_name!r}"
                )
        route = meta["route"]
        lookahead = meta["lookahead"] or 1
        end_of_traffic = meta["end_of_traffic"]
        horizon = meta["horizon"]
        hard_cap = meta["hard_cap"]
        total_flows = meta["flows"]
        interval = meta["interval"]

        next_times: List[Optional[int]] = [m["next"] for m in metas]
        pendings: List[int] = [m["pending"] for m in metas]
        staged: List[List[tuple]] = [[] for _ in range(num_shards)]
        completions: List[int] = []  # sorted end_rx_ns of finished flows
        completed = 0
        now = 0
        next_tick = interval
        sampler_alive = True

        def gmin() -> Optional[int]:
            g: Optional[int] = None
            for t in next_times:
                if t is not None and (g is None or t < g):
                    g = t
            for batch in staged:
                for msg in batch:
                    if g is None or msg[0] < g:
                        g = msg[0]
            return g

        def issue(until: int) -> None:
            nonlocal now, completed, staged, sampler_alive, next_tick
            batches = staged
            staged = [[] for _ in range(num_shards)]
            stop = not sampler_alive
            for i, handle in enumerate(handles):
                batch = batches[i]
                batch.sort()  # (arrival_ns, wire_seq, ...): the heap's own order
                handle.send(("win", until, batch, stop))
            for i, handle in enumerate(handles):
                reply = handle.recv()
                next_times[i] = reply["next"]
                pendings[i] = reply["pending"]
                for t_done, _flow_id in reply["done"]:
                    insort(completions, t_done)
                    completed += 1
                for cut_id, t, seq, kind, payload in reply["out"]:
                    staged[route[cut_id]].append((t, seq, cut_id, kind, payload))
            now = until
            # Replay the single-core sampler liveness predicate for every
            # tick this window reached. Completion times equal to the
            # tick don't count: the delivery event carries a later
            # sequence number than the tick, so the single-core sampler
            # observed the flow as still incomplete.
            while sampler_alive and next_tick <= now:
                if (
                    next_tick < end_of_traffic
                    or total_flows - bisect_left(completions, next_tick) > 0
                ):
                    next_tick += interval
                else:
                    sampler_alive = False

        def advance(target: int) -> None:
            while now < target:
                g = gmin()
                until = target if g is None else min(target, g + lookahead - 1)
                if until <= now:
                    until = now + 1
                issue(until)

        advance(horizon)
        while total_flows - completed > 0 and now < hard_cap and any(pendings):
            advance(min(now + 50 * MILLIS, hard_cap))

        restore_gc()
        for handle in handles:
            handle.send(("fin",))
        payloads = [handle.recv() for handle in handles]
    finally:
        restore_gc()
        for handle in handles:
            handle.stop()

    result = _merge(config, payloads, duration_ns=now)
    TALLY.add(result.net.engine.events_processed, time.perf_counter() - wall_started)
    return result
