"""The discrete-event engine.

A single binary heap orders events by ``(time, sequence)``. The sequence
number breaks ties deterministically in scheduling order, which makes a
whole simulation a pure function of its inputs and RNG seeds.

Events are callbacks. Cancellation is done lazily (the event is flagged
and skipped when popped) which keeps the heap operations O(log n).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback. Returned by :meth:`Engine.schedule`.

    Use :meth:`cancel` to revoke it; cancelled events are skipped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Revoke the event. Safe to call more than once or after firing."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} #{self.seq} {getattr(self.fn, '__qualname__', self.fn)}{state}>"


class Engine:
    """Discrete-event simulation engine with an integer-nanosecond clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._seq = 0
        self.now: int = 0
        self._running = False
        self._events_processed = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` events have been processed.

        Returns the number of events processed by this call. When
        ``until`` is given the call always ends with ``now ==
        max(now, until)``, whether or not future events remain queued —
        unless ``max_events`` stopped it before every event at or
        before ``until`` was processed (advancing past unprocessed
        events would run them in the past).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        try:
            while queue:
                event = queue[0]
                if until is not None and event.time > until:
                    break
                heapq.heappop(queue)
                if event.cancelled:
                    continue
                self.now = event.time
                event.fn(*event.args)
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and self.now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until
        self._events_processed += processed
        return processed

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event. Returns False if idle."""
        return self.run(max_events=1) == 1

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total events executed over the engine's lifetime."""
        return self._events_processed

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None when idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None
