"""The discrete-event engine.

A single binary heap orders events by ``(time, sequence)``. The sequence
number breaks ties deterministically in scheduling order, which makes a
whole simulation a pure function of its inputs and RNG seeds.

Hot-path layout: heap entries are plain ``(time, seq, event)`` tuples.
``seq`` is unique per engine, so ``heapq``'s sift compares never reach
the third element — every comparison is a C-level int compare instead
of a Python ``__lt__`` call. The :class:`Event` object is only the
cancellation handle riding along in the tuple.

Events are callbacks. Cancellation is done lazily (the event is flagged
and skipped when popped) which keeps heap operations O(log n); the
engine counts dead heap entries and compacts the heap in place when
more than half of it is cancelled, so timer-churn-heavy runs do not
hold O(all-cancelled-events) memory.

Coarse, frequently rescheduled timers (RTOs, PFC pause expiry, DCQCN
rate timers) should use :meth:`Engine.schedule_timer`, which parks them
in a hierarchical timer wheel (:mod:`repro.sim.timerwheel`) instead of
the heap. A wheel timer that is cancelled before its slot comes due —
the overwhelmingly common case for retransmission timers — never
touches the heap at all. Timers fire in exactly the same ``(time,
seq)`` order the heap would have used, so results are bit-identical.
"""

from __future__ import annotations

import gc
import heapq
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional

from repro.sim.timerwheel import NEVER, TimerWheel


class SimulationError(RuntimeError):
    """Raised on misuse of the engine (e.g. scheduling in the past)."""


#: GC thresholds applied while ``Engine.run`` executes (restored on
#: exit). The simulator allocates acyclic objects (events, packets,
#: tuples) at a very high rate; the CPython default gen-0 threshold of
#: 700 makes the collector scan the young generation tens of thousands
#: of times per simulated second for nothing. On top of the thresholds
#: the cyclic collector itself is paused for the duration of the run:
#: everything the hot path allocates (heap tuples, events, pooled
#: packets, segments) is acyclic and dies by refcount; reference cycles
#: only exist among long-lived topology objects, which outlive the run
#: anyway and are swept by the caller's collector afterwards.
_GC_RUN_THRESHOLDS = (100_000, 20, 20)

#: When not ``None``, ``Engine.run`` attributes wall time per event
#: callback into this table as ``{qualname: [calls, total_ns]}``. Set
#: via :func:`set_attribution` (used by :mod:`repro.sim.profiler`).
_ATTRIBUTION: Optional[Dict[str, List[int]]] = None

#: Base of the wire-delivery sequence space. Ordinary events draw
#: sequence numbers from the engine's global counter (push order); link
#: deliveries and PFC frames instead carry ``WIRE_SEQ_BASE +
#: (port_rank << 33) + per_port_count`` (see ``repro.net.link``). Two
#: same-nanosecond wire arrivals are therefore ordered by a key that is
#: a pure function of (which port emitted, how many frames it emitted
#: before) — computable identically by a single engine or by the shard
#: that owns the emitting port, which is what makes sharded execution
#: (``repro.sim.sharding``) bit-identical. The base keeps every wire
#: key above any realistic global counter value, so at one nanosecond
#: locally-scheduled events (timers, transport callbacks, tx_done)
#: always execute before wire arrivals.
WIRE_SEQ_BASE = 1 << 50


def set_attribution(table: Optional[Dict[str, List[int]]]) -> None:
    """Install (or clear) the global per-callback attribution table.

    Takes effect on the next :meth:`Engine.run` call; the un-attributed
    hot loop pays nothing for the feature.
    """
    global _ATTRIBUTION
    _ATTRIBUTION = table


class Event:
    """A scheduled callback. Returned by :meth:`Engine.schedule`.

    Use :meth:`cancel` to revoke it; cancelled events are skipped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "in_wheel", "engine")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple,
                 engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.in_wheel = False
        self.engine = engine

    def cancel(self) -> None:
        """Revoke the event. Safe to call more than once or after firing."""
        if self.cancelled:
            return
        self.cancelled = True
        if self.engine is not None:
            self.engine._note_cancel(self)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        where = " wheel" if self.in_wheel else ""
        return f"<Event t={self.time} #{self.seq} {getattr(self.fn, '__qualname__', self.fn)}{where}{state}>"


class Engine:
    """Discrete-event simulation engine with an integer-nanosecond clock."""

    #: Heap compaction trigger: compact when at least this many dead
    #: entries make up more than half of the heap.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._queue: list = []  # (time, seq, Event) tuples
        self._seq = 0
        self.now: int = 0
        self._running = False
        self._events_processed = 0
        self._heap_dead = 0  # cancelled entries still in the heap
        self._wheel_min = NEVER  # earliest occupied wheel slot start
        self._wheel = TimerWheel(self)
        # Construction-order rank handed to each Port; identical
        # topologies built on fresh engines assign identical ranks,
        # which anchors the WIRE_SEQ_BASE key space (see link.py).
        self._port_rank = 0

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated time ``time`` ns."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_anon(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Schedule ``fn(*args)`` with no cancellation handle.

        For internal hot paths (packet serialization/propagation) that
        never cancel: the heap entry is a bare ``(time, seq, fn, args)``
        tuple, skipping :class:`Event` allocation. Ordering is identical
        to :meth:`schedule` — the same seq counter is used.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self.now + delay, seq, fn, args))

    def schedule_timer(self, delay: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule a coarse timer ``delay`` ns from now.

        Semantically identical to :meth:`schedule` — same ``(time,
        seq)`` firing order, same :class:`Event` handle — but the event
        is parked in the hierarchical timer wheel until its slot comes
        due. Use it for timers that are usually cancelled or
        rescheduled before firing (RTOs, PFC pause expiry, DCQCN rate
        timers): cancel/reschedule then costs O(1) and never floods the
        heap with dead entries.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ns in the past")
        return self.schedule_timer_at(self.now + delay, fn, *args)

    def schedule_timer_at(self, time: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Absolute-time variant of :meth:`schedule_timer`."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time}, current time is {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, fn, args, self)
        self._wheel.add(event)
        return event

    # -- cancellation bookkeeping ---------------------------------------------

    def _note_cancel(self, event: Event) -> None:
        """Called by :meth:`Event.cancel`; tracks dead entries and
        compacts the heap when over half of it is cancelled."""
        if event.in_wheel:
            self._wheel.live -= 1
            return
        dead = self._heap_dead + 1
        self._heap_dead = dead
        if dead >= self.COMPACT_MIN_DEAD and dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place (the run
        loop aliases the heap list, so the list object must survive).
        Anonymous 4-tuple entries are never cancelled and always kept."""
        queue = self._queue
        queue[:] = [e for e in queue if len(e) == 4 or not e[2].cancelled]
        heapq.heapify(queue)
        self._heap_dead = 0

    # -- execution -----------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` ns is reached, or
        ``max_events`` events have been processed.

        Returns the number of events processed by this call. When
        ``until`` is given the call always ends with ``now ==
        max(now, until)``, whether or not future events remain queued —
        unless ``max_events`` stopped it before every event at or
        before ``until`` was processed (advancing past unprocessed
        events would run them in the past).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        wheel = self._wheel
        pop = heapq.heappop
        attr = _ATTRIBUTION
        # Sentinels keep per-event None-checks out of the loop.
        horizon = until if until is not None else NEVER
        stop_at = max_events if max_events is not None else -1
        gc_prev = gc.get_threshold()
        gc_was_enabled = gc.isenabled()
        gc.set_threshold(*_GC_RUN_THRESHOLDS)
        gc.disable()
        push = heapq.heappush
        try:
            while True:
                if queue:
                    # Pop eagerly; the boundary cases (wheel slot due,
                    # horizon reached) push the entry back. They happen
                    # a handful of times per run, the pop per event.
                    entry = pop(queue)
                    time = entry[0]
                    if self._wheel_min <= time:
                        push(queue, entry)
                        wheel.flush(time)
                        continue
                    if time > horizon:
                        push(queue, entry)
                        break
                    if len(entry) == 4:
                        fn = entry[2]
                        args = entry[3]
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._heap_dead -= 1
                            continue
                        fn = event.fn
                        args = event.args
                    self.now = time
                    if attr is None:
                        fn(*args)
                    else:
                        t0 = perf_counter_ns()
                        fn(*args)
                        dt = perf_counter_ns() - t0
                        key = getattr(fn, "__qualname__", None) or repr(fn)
                        rec = attr.get(key)
                        if rec is None:
                            attr[key] = [1, dt]
                        else:
                            rec[0] += 1
                            rec[1] += dt
                    processed += 1
                    if processed == stop_at:
                        break
                else:
                    wmin = self._wheel_min
                    if wmin == NEVER or wmin > horizon:
                        break
                    wheel.flush(wmin)
        finally:
            self._running = False
            gc.set_threshold(*gc_prev)
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until
        self._events_processed += processed
        return processed

    def run_window(self, until: int) -> int:
        """Run one conservative-lookahead window: every event with
        ``time <= until``, then set ``now = until``.

        The barrier-stepping primitive used by :mod:`repro.sim.sharding`
        worker engines. Semantically :meth:`run`'s ``until`` path — same
        pop loop, same wheel flushing, same end-of-window clock rule —
        but without the per-call GC threshold dance and profiler
        attribution: a sharded worker steps thousands of small windows
        per run, so per-window setup must be near-zero (the worker
        manages GC once around its whole barrier loop instead).
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        processed = 0
        queue = self._queue
        wheel = self._wheel
        pop = heapq.heappop
        push = heapq.heappush
        try:
            while True:
                if queue:
                    entry = pop(queue)
                    time = entry[0]
                    if self._wheel_min <= time:
                        push(queue, entry)
                        wheel.flush(time)
                        continue
                    if time > until:
                        push(queue, entry)
                        break
                    if len(entry) == 4:
                        fn = entry[2]
                        args = entry[3]
                    else:
                        event = entry[2]
                        if event.cancelled:
                            self._heap_dead -= 1
                            continue
                        fn = event.fn
                        args = event.args
                    self.now = time
                    fn(*args)
                    processed += 1
                else:
                    wmin = self._wheel_min
                    if wmin == NEVER or wmin > until:
                        break
                    wheel.flush(wmin)
        finally:
            self._running = False
        if self.now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self.now = until
        self._events_processed += processed
        return processed

    def step(self) -> bool:
        """Process exactly one (non-cancelled) event. Returns False if idle."""
        return self.run(max_events=1) == 1

    # -- introspection ---------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of *live* (not cancelled) events still queued,
        including wheel-resident timers. Cancelled events awaiting lazy
        removal are not counted."""
        live = len(self._queue) - self._heap_dead + self._wheel.live
        return live if live > 0 else 0

    @property
    def pending_total(self) -> int:
        """Queued entries including cancelled ones awaiting lazy
        removal — the actual memory footprint of the schedule."""
        return len(self._queue) + self._wheel.total_entries()

    @property
    def events_processed(self) -> int:
        """Total events executed over the engine's lifetime."""
        return self._events_processed

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None when idle."""
        queue = self._queue
        while True:
            while queue and len(queue[0]) == 3 and queue[0][2].cancelled:
                heapq.heappop(queue)
                self._heap_dead -= 1
            wmin = self._wheel_min
            if wmin == NEVER or (queue and queue[0][0] < wmin):
                break
            # A wheel slot may hold the earliest live event: flush it
            # into the heap (cancelled wheel timers die here).
            self._wheel.flush(queue[0][0] if queue else wmin)
        return queue[0][0] if queue else None
