"""Seeded random-number streams.

Each subsystem (workload arrivals, flow sizes, ECMP tie-breaks, ...)
draws from its own named stream derived from the experiment's master
seed, so adding randomness to one subsystem never perturbs another.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a per-stream seed from a master seed and a stream name."""
    return (master_seed * 0x9E3779B1 + zlib.crc32(name.encode())) & 0xFFFFFFFF


class RngRegistry:
    """Factory for named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 1):
        self.master_seed = master_seed
        self._streams: dict = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, name))
            self._streams[name] = rng
        return rng
