/* Compiled hot-path backend for the TLT simulator (repro.sim._ckernel).
 *
 * Drop-in C implementations of the inner loops behind
 * ``repro.sim.backend``:
 *
 *   - CEngine  -- mirrors repro.sim.engine.Engine exactly: same raw
 *     (time, seq, Event) / (time, seq, fn, args) tuple heap layout on a
 *     real PyList (so link.py, the timer wheel and sharding can keep
 *     pushing entries with Python heapq), same GC-threshold dance, same
 *     end-of-run clock rule, same attribution hook.
 *   - CEvent   -- the cancellation handle (interops with TimerWheel).
 *   - SwitchKernel / HostKernel / PortKernel -- per-instance kernels
 *     bound by repro.sim.backend.optimize_network; each exposes
 *     KernelMethod callables that shadow the pure-Python methods
 *     (switch._receive_fast, host.send, port._tx_cb, ...).
 *
 * Determinism contract: every arithmetic decision below transcribes the
 * pure-Python fast path statement by statement -- same comparison
 * order, same drop precedence, same integer/float mixing (all values
 * stay far below 2**53 so C doubles are exact) -- and the heap compare
 * is numerically identical to tuple comparison because heap keys are
 * unique (time, seq) int pairs.  The pinned fingerprints in
 * tests/test_determinism.py gate this bit-for-bit.
 *
 * Mutable-attribute rules (why some things are cached and others are
 * re-read per call): objects assigned once in __init__/finalize before
 * optimize_network runs (fib, fib._routes, buffer, stats, ports, pfc,
 * _drop, config object, host.nic.queue, host.endpoints, port._inflight)
 * are cached; attributes experiments reassign after build
 * (switch._port_queues, switch._rr -- see ext_incremental.py -- plus
 * switch.ecn and every config *field*) are fetched on every call.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>
#include <time.h>

#define NEVER_LL (1LL << 62)
#define COMPACT_MIN_DEAD_C 64
#define POOL_MAX_C 4096

/* ---------------------------------------------------------------------------
 * Module-level cached state (single-interpreter; resolved at import).
 * ------------------------------------------------------------------------- */

static PyObject *SimulationErrorObj;  /* repro.sim.engine.SimulationError */
static PyObject *TimerWheelCls;       /* repro.sim.timerwheel.TimerWheel */
static PyObject *StepEcnCls;          /* repro.switchsim.ecn.StepEcn */
static PyObject *IntRecordCls;        /* repro.net.packet.IntRecord */
static PyObject *PacketModule;        /* repro.net.packet (for _pool_enabled) */
static PyObject *PacketPool;          /* repro.net.packet._POOL (cleared in place) */
static PyObject *GcGetThreshold, *GcSetThreshold, *GcEnable, *GcDisable, *GcIsEnabled;
static PyObject *GcRunThresholds;     /* (100000, 20, 20) */
static PyObject *EmptyTuple;
static PyObject *LLZero, *LLOne;      /* FRAME_PACKET / FRAME_PAUSE */
static PyObject *Attribution;         /* attribution table (dict) or NULL */

/* Packet allocation fast path (mod_alloc_packet). */
static PyObject *PacketCls;           /* repro.net.packet.Packet */
static PyObject *AllocPacketPy;       /* the original Python alloc_packet */
static PyObject *KindDATAObj, *KindCNPObj;   /* PacketKind singletons */
static PyObject *MarkNONEObj, *ColorGREENObj;
static PyObject *AckBytesObj, *CnpBytesObj;  /* cached size ints */
static long long HeaderBytesLL;

/* Receiver fast path (c_receiver_on_packet): in-order DATA delivery to
 * a stock ByteStreamReceiver, handled without entering Python. */
static PyObject *BSReceiverOnPacket;  /* ByteStreamReceiver.on_packet */
static PyObject *TltWindowReceiverCls, *ReceiverBufferCls;
static PyObject *RecvIMPORTANTObj, *RecvIMPCLOCKObj, *RecvIDLEObj;
static PyObject *KindACKObj;
static PyObject *MarkIMPDATAObj, *MarkIMPCLOCKDATAObj;
static PyObject *MarkIMPECHOObj, *MarkIMPCLOCKECHOObj, *MarkCONTROLObj;

/* Interned attribute-name strings. */
static PyObject *s_kick, *s_flush, *s_add, *s_receive, *s_receive_pause,
    *s_poll, *s_append, *s_popleft, *s_port_queues, *s_rr, *s_ecn,
    *s_color_threshold_bytes, *s_color_classes, *s_int_enabled, *s_k_bytes,
    *s_should_mark, *s_ecn_marks, *s_on_packet, *s_add_int_record,
    *s_qualname, *s_live, *s_pool_enabled, *s_fib, *s_routes, *s_lookup,
    *s_buffer, *s_stats, *s_ports, *s_drop_m, *s_config, *s_pfc,
    *s_on_admit, *s_on_release, *s_engine, *s_nic, *s_queue_attr,
    *s_endpoints, *s_port_attr, *s_cancelled, *s_fn, *s_args, *s_in_wheel,
    *s_color_str, *s_pool_str, *s_dynamic_str,
    *s_kw_seq, *s_kw_payload, *s_kw_ack, *s_kw_size,
    *s_tlt_rx, *s_done, *s_spec, *s_state, *s_traffic_class,
    *s_plain_color, *s_size_attr, *s_src_attr, *s_dst_attr,
    *s_flow_id_attr, *s_host_attr, *s_send_attr;

/* __slots__ offsets (resolved at import from the Python types). */
static Py_ssize_t P_engine, P_owner, P_port_no, P_peer, P_rate_bps,
    P_delay_ns, P_busy, P_paused, P_down, P_tx_bytes, P_tx_packets,
    P_peer_deliver, P_wire_seq, P_inflight, P_tx_cb, P_drain_cb;
static Py_ssize_t K_flow_id, K_dst, K_kind, K_size, K_tclass,
    K_ecn_capable, K_ce, K_color, K_int_records, K_pooled,
    K_src, K_seq, K_payload, K_ack, K_sack, K_ecn_echo, K_mark,
    K_is_retx, K_ts_sent, K_ts_echo, K_int_echo;
static Py_ssize_t R_rcv_nxt, R_intervals, R_last_seq;  /* ReceiverBuffer */
static Py_ssize_t Q_items, Q_occupancy, Q_red_bytes, Q_max_occupancy,
    Q_max_red_bytes, Q_dequeued_bytes;
static Py_ssize_t B_capacity, B_alpha, B_used, B_peak_used;

/* ---------------------------------------------------------------------------
 * Small helpers.
 * ------------------------------------------------------------------------- */

#define GETSLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

static int
slot_ll(PyObject *obj, Py_ssize_t off, long long *out)
{
    PyObject *v = GETSLOT(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "unset slot");
        return -1;
    }
    long long r = PyLong_AsLongLong(v);
    if (r == -1 && PyErr_Occurred())
        return -1;
    *out = r;
    return 0;
}

static int
slot_store_ll(PyObject *obj, Py_ssize_t off, long long v)
{
    PyObject *nv = PyLong_FromLongLong(v);
    if (nv == NULL)
        return -1;
    PyObject *old = GETSLOT(obj, off);
    GETSLOT(obj, off) = nv;
    Py_XDECREF(old);
    return 0;
}

static int
slot_truth(PyObject *obj, Py_ssize_t off)
{
    PyObject *v = GETSLOT(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "unset slot");
        return -1;
    }
    return PyObject_IsTrue(v);
}

static inline void
slot_store_obj(PyObject *obj, Py_ssize_t off, PyObject *v)
{
    Py_INCREF(v);
    PyObject *old = GETSLOT(obj, off);
    GETSLOT(obj, off) = v;
    Py_XDECREF(old);
}

static int
slot_store_bool(PyObject *obj, Py_ssize_t off, int truth)
{
    PyObject *nv = truth ? Py_True : Py_False;
    Py_INCREF(nv);
    PyObject *old = GETSLOT(obj, off);
    GETSLOT(obj, off) = nv;
    Py_XDECREF(old);
    return 0;
}

static long long
monotonic_ns(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (long long)ts.tv_sec * 1000000000LL + ts.tv_nsec;
}

/* ceil(size_bytes * 8 * 1e9 / rate_bps) -- mirrors units.tx_time_ns. */
static long long
c_tx_time_ns(long long size_bytes, long long rate_bps)
{
    if (rate_bps <= 0) {
        PyErr_Format(PyExc_ValueError, "rate must be positive, got %lld", rate_bps);
        return -1;
    }
    long long num = size_bytes * 8LL * 1000000000LL;
    return (num + rate_bps - 1) / rate_bps;
}

/* ---------------------------------------------------------------------------
 * Heap primitives on a PyList of (time, seq, ...) tuples.
 *
 * Ordering is identical to Python heapq's tuple comparison: heap keys
 * are unique (time, seq) integer pairs, so lexicographic tuple compare
 * never reaches element 2 and equals the numeric compare used here.
 * ------------------------------------------------------------------------- */

/* Read a non-negative PyLong that fits in 62 bits straight from its
 * digits (times and sequence numbers in this simulator are always in
 * that range). Returns 1 and fills *out on success, 0 when the value
 * needs the generic compare (not an exact int, negative, or huge).
 * Never raises: callers fall back to PyObject_RichCompareBool. */
static inline int
ll_read_fast(PyObject *o, long long *out)
{
    if (!PyLong_CheckExact(o))
        return 0;
    const PyLongObject *v = (const PyLongObject *)o;
    switch (Py_SIZE(v)) {
    case 0:
        *out = 0;
        return 1;
    case 1:
        *out = (long long)v->ob_digit[0];
        return 1;
    case 2:
        *out = ((long long)v->ob_digit[1] << PyLong_SHIFT) |
               (long long)v->ob_digit[0];
        return 1;
    case 3:
        /* Three digits reach 2^90; only accept values below 2^62. */
        if (v->ob_digit[2] >> (62 - 2 * PyLong_SHIFT))
            return 0;
        *out = ((long long)v->ob_digit[2] << (2 * PyLong_SHIFT)) |
               ((long long)v->ob_digit[1] << PyLong_SHIFT) |
               (long long)v->ob_digit[0];
        return 1;
    default:
        return 0;
    }
}

static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b) &&
        PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        long long va, vb;
        if (ll_read_fast(PyTuple_GET_ITEM(a, 0), &va) &&
            ll_read_fast(PyTuple_GET_ITEM(b, 0), &vb)) {
            if (va != vb)
                return va < vb;
            long long sa, sb;
            if (ll_read_fast(PyTuple_GET_ITEM(a, 1), &sa) &&
                ll_read_fast(PyTuple_GET_ITEM(b, 1), &sb))
                return sa < sb;
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = entry_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyObject *old = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, pos, parent);
        Py_DECREF(old);
        pos = parentpos;
    }
    PyObject *old = PyList_GET_ITEM(heap, pos);
    PyList_SET_ITEM(heap, pos, newitem);  /* steals our extra ref */
    Py_DECREF(old);
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = entry_lt(PyList_GET_ITEM(heap, rightpos),
                              PyList_GET_ITEM(heap, childpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyObject *old = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, pos, child);
        Py_DECREF(old);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyObject *old = PyList_GET_ITEM(heap, pos);
    PyList_SET_ITEM(heap, pos, newitem);  /* steals our extra ref */
    Py_DECREF(old);
    return heap_siftdown(heap, startpos, pos);
}

/* append that reuses the list's spare capacity (borrows item). */
static inline int
list_append_fast(PyObject *list, PyObject *item)
{
    PyListObject *lp = (PyListObject *)list;
    Py_ssize_t n = Py_SIZE(lp);
    if (n < lp->allocated) {
        Py_INCREF(item);
        lp->ob_item[n] = item;
        Py_SET_SIZE(lp, n + 1);
        return 0;
    }
    return PyList_Append(list, item);
}

/* heappush(heap, item): borrows item. */
static int
heap_push(PyObject *heap, PyObject *item)
{
    if (list_append_fast(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* heappop(heap): returns a new reference, NULL on error. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    /* Steal the tail slot directly instead of PyList_SetSlice: the
     * list keeps its allocation (heap sizes are modest and re-grow
     * constantly), and 0 <= ob_size <= allocated stays true. */
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_SET_SIZE(heap, n - 1);
    if (n == 1)
        return lastelt;
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyObject *old = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, lastelt);  /* steals lastelt */
    Py_DECREF(old);
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

static int
heap_heapify(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    for (Py_ssize_t i = n / 2 - 1; i >= 0; i--) {
        if (heap_siftup(heap, i) < 0)
            return -1;
    }
    return 0;
}

/* Push a freshly built (t, seq, fn, args) 4-tuple; borrows fn/args. */
static int
heap_push_anon(PyObject *heap, long long t, long long seq,
               PyObject *fn, PyObject *args)
{
    PyObject *to = PyLong_FromLongLong(t);
    if (to == NULL)
        return -1;
    PyObject *so = PyLong_FromLongLong(seq);
    if (so == NULL) {
        Py_DECREF(to);
        return -1;
    }
    PyObject *entry = PyTuple_Pack(4, to, so, fn, args);
    Py_DECREF(to);
    Py_DECREF(so);
    if (entry == NULL)
        return -1;
    int r = heap_push(heap, entry);
    Py_DECREF(entry);
    return r;
}

/* ---------------------------------------------------------------------------
 * CEvent -- the cancellation handle (mirrors engine.Event).
 * ------------------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    long long time;
    long long seq;
    PyObject *fn;
    PyObject *args;
    PyObject *engine;   /* CEngine (or None for detached events) */
    char cancelled;
    char in_wheel;
} CEventObject;

static PyTypeObject CEventType;
static PyTypeObject CEngineType;
static PyTypeObject KernelMethodType;

#define CEvent_CheckExact(op) (Py_TYPE(op) == &CEventType)
#define CEngine_CheckExact(op) (Py_TYPE(op) == &CEngineType)

/* Defined with the KernelMethod type below; lets the event loop jump
 * straight into a kernel's C entry point without call machinery. */
static int km_invoke_fast(PyObject *fn, PyObject *fargs);

typedef struct {
    PyObject_HEAD
    PyObject *queue;          /* PyList of heap tuples */
    PyObject *wheel;          /* TimerWheel(self) */
    long long seq;
    long long now;
    long long events_processed;
    long long heap_dead;
    long long wheel_min;
    long long port_rank;
    int running;
} CEngineObject;

static int cengine_note_cancel_internal(CEngineObject *self, PyObject *event);

static PyObject *
cevent_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CEventObject *self = (CEventObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->time = 0;
    self->seq = 0;
    self->fn = NULL;
    self->args = NULL;
    self->engine = NULL;
    self->cancelled = 0;
    self->in_wheel = 0;
    return (PyObject *)self;
}

static int
cevent_init(CEventObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "seq", "fn", "args", "engine", NULL};
    long long time, seq;
    PyObject *fn, *fargs, *engine = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "LLOO|O", kwlist,
                                     &time, &seq, &fn, &fargs, &engine))
        return -1;
    self->time = time;
    self->seq = seq;
    Py_INCREF(fn);
    Py_XSETREF(self->fn, fn);
    Py_INCREF(fargs);
    Py_XSETREF(self->args, fargs);
    Py_INCREF(engine);
    Py_XSETREF(self->engine, engine);
    self->cancelled = 0;
    self->in_wheel = 0;
    return 0;
}

/* Free list of exact CEvent instances: the simulator churns through
 * one Event per schedule()/timer, so recycling the GC header is a
 * measurable win. Dead entries are linked through their fn slot. */
#define CEVENT_MAXFREELIST 128
static CEventObject *cevent_free_head = NULL;
static int cevent_numfree = 0;

/* Internal constructor used by CEngine.schedule*. */
static CEventObject *
cevent_make(long long time, long long seq, PyObject *fn, PyObject *args,
            PyObject *engine)
{
    CEventObject *ev;
    if (cevent_free_head != NULL) {
        ev = cevent_free_head;
        cevent_free_head = (CEventObject *)ev->fn;
        cevent_numfree--;
        _Py_NewReference((PyObject *)ev);
        PyObject_GC_Track((PyObject *)ev);
    }
    else {
        ev = (CEventObject *)CEventType.tp_alloc(&CEventType, 0);
        if (ev == NULL)
            return NULL;
    }
    ev->time = time;
    ev->seq = seq;
    Py_INCREF(fn);
    ev->fn = fn;
    Py_INCREF(args);
    ev->args = args;
    Py_INCREF(engine);
    ev->engine = engine;
    ev->cancelled = 0;
    ev->in_wheel = 0;
    return ev;
}

static int
cevent_traverse(CEventObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    Py_VISIT(self->engine);
    return 0;
}

static int
cevent_clear(CEventObject *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    Py_CLEAR(self->engine);
    return 0;
}

static void
cevent_dealloc(CEventObject *self)
{
    PyObject_GC_UnTrack(self);
    cevent_clear(self);
    if (CEvent_CheckExact(self) && cevent_numfree < CEVENT_MAXFREELIST) {
        self->fn = (PyObject *)cevent_free_head;
        cevent_free_head = self;
        cevent_numfree++;
    }
    else {
        Py_TYPE(self)->tp_free((PyObject *)self);
    }
}

static PyObject *
cevent_cancel(CEventObject *self, PyObject *Py_UNUSED(ignored))
{
    if (self->cancelled)
        Py_RETURN_NONE;
    self->cancelled = 1;
    if (self->engine != NULL && self->engine != Py_None) {
        if (Py_TYPE(self->engine) == &CEngineType) {
            if (cengine_note_cancel_internal((CEngineObject *)self->engine,
                                             (PyObject *)self) < 0)
                return NULL;
        }
        else {
            PyObject *r = PyObject_CallMethod(self->engine, "_note_cancel",
                                              "O", (PyObject *)self);
            if (r == NULL)
                return NULL;
            Py_DECREF(r);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
cevent_richcompare(PyObject *a, PyObject *b, int op)
{
    if (op != Py_LT || !CEvent_CheckExact(a)) {
        Py_RETURN_NOTIMPLEMENTED;
    }
    long long bt, bs;
    if (CEvent_CheckExact(b)) {
        bt = ((CEventObject *)b)->time;
        bs = ((CEventObject *)b)->seq;
    }
    else {
        PyObject *to = PyObject_GetAttrString(b, "time");
        if (to == NULL)
            return NULL;
        bt = PyLong_AsLongLong(to);
        Py_DECREF(to);
        if (bt == -1 && PyErr_Occurred())
            return NULL;
        PyObject *so = PyObject_GetAttrString(b, "seq");
        if (so == NULL)
            return NULL;
        bs = PyLong_AsLongLong(so);
        Py_DECREF(so);
        if (bs == -1 && PyErr_Occurred())
            return NULL;
    }
    CEventObject *ea = (CEventObject *)a;
    int lt = (ea->time != bt) ? (ea->time < bt) : (ea->seq < bs);
    return PyBool_FromLong(lt);
}

static PyObject *
cevent_repr(CEventObject *self)
{
    PyObject *qn = self->fn ? PyObject_GetAttrString(self->fn, "__qualname__") : NULL;
    if (qn == NULL) {
        PyErr_Clear();
        qn = self->fn ? PyObject_Repr(self->fn) : PyUnicode_FromString("?");
        if (qn == NULL)
            return NULL;
    }
    PyObject *r = PyUnicode_FromFormat(
        "<CEvent t=%lld #%lld %U%s%s>", self->time, self->seq, qn,
        self->in_wheel ? " wheel" : "", self->cancelled ? " cancelled" : "");
    Py_DECREF(qn);
    return r;
}

static PyObject *
cevent_get_cancelled(CEventObject *self, void *closure)
{
    return PyBool_FromLong(self->cancelled);
}

static int
cevent_set_cancelled(CEventObject *self, PyObject *value, void *closure)
{
    int t = PyObject_IsTrue(value);
    if (t < 0)
        return -1;
    self->cancelled = (char)t;
    return 0;
}

static PyObject *
cevent_get_in_wheel(CEventObject *self, void *closure)
{
    return PyBool_FromLong(self->in_wheel);
}

static int
cevent_set_in_wheel(CEventObject *self, PyObject *value, void *closure)
{
    int t = PyObject_IsTrue(value);
    if (t < 0)
        return -1;
    self->in_wheel = (char)t;
    return 0;
}

static PyObject *
cevent_get_time(CEventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->time);
}

static int
cevent_set_time(CEventObject *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->time = v;
    return 0;
}

static PyObject *
cevent_get_seq(CEventObject *self, void *closure)
{
    return PyLong_FromLongLong(self->seq);
}

static int
cevent_set_seq(CEventObject *self, PyObject *value, void *closure)
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred())
        return -1;
    self->seq = v;
    return 0;
}

static PyObject *
cevent_get_fn(CEventObject *self, void *closure)
{
    PyObject *v = self->fn ? self->fn : Py_None;
    Py_INCREF(v);
    return v;
}

static PyObject *
cevent_get_args(CEventObject *self, void *closure)
{
    PyObject *v = self->args ? self->args : Py_None;
    Py_INCREF(v);
    return v;
}

static PyObject *
cevent_get_engine(CEventObject *self, void *closure)
{
    PyObject *v = self->engine ? self->engine : Py_None;
    Py_INCREF(v);
    return v;
}

static PyGetSetDef cevent_getset[] = {
    {"time", (getter)cevent_get_time, (setter)cevent_set_time, NULL, NULL},
    {"seq", (getter)cevent_get_seq, (setter)cevent_set_seq, NULL, NULL},
    {"fn", (getter)cevent_get_fn, NULL, NULL, NULL},
    {"args", (getter)cevent_get_args, NULL, NULL, NULL},
    {"engine", (getter)cevent_get_engine, NULL, NULL, NULL},
    {"cancelled", (getter)cevent_get_cancelled, (setter)cevent_set_cancelled, NULL, NULL},
    {"in_wheel", (getter)cevent_get_in_wheel, (setter)cevent_set_in_wheel, NULL, NULL},
    {NULL},
};

static PyMethodDef cevent_methods[] = {
    {"cancel", (PyCFunction)cevent_cancel, METH_NOARGS,
     "Revoke the event. Safe to call more than once or after firing."},
    {NULL},
};

static PyTypeObject CEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.CEvent",
    .tp_basicsize = sizeof(CEventObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback (compiled engine's Event).",
    .tp_new = cevent_new,
    .tp_init = (initproc)cevent_init,
    .tp_dealloc = (destructor)cevent_dealloc,
    .tp_traverse = (traverseproc)cevent_traverse,
    .tp_clear = (inquiry)cevent_clear,
    .tp_richcompare = cevent_richcompare,
    .tp_repr = (reprfunc)cevent_repr,
    .tp_methods = cevent_methods,
    .tp_getset = cevent_getset,
};

/* ---------------------------------------------------------------------------
 * CEngine -- drop-in compiled Engine.
 * ------------------------------------------------------------------------- */

static int
cengine_compact(CEngineObject *self)
{
    PyObject *queue = self->queue;
    Py_ssize_t n = PyList_GET_SIZE(queue);
    PyObject *kept = PyList_New(0);
    if (kept == NULL)
        return -1;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *e = PyList_GET_ITEM(queue, i);
        int keep = 1;
        if (PyTuple_CheckExact(e) && PyTuple_GET_SIZE(e) == 3) {
            PyObject *ev = PyTuple_GET_ITEM(e, 2);
            if (CEvent_CheckExact(ev)) {
                keep = !((CEventObject *)ev)->cancelled;
            }
            else {
                PyObject *c = PyObject_GetAttr(ev, s_cancelled);
                if (c == NULL)
                    goto fail;
                int t = PyObject_IsTrue(c);
                Py_DECREF(c);
                if (t < 0)
                    goto fail;
                keep = !t;
            }
        }
        if (keep && PyList_Append(kept, e) < 0)
            goto fail;
    }
    if (PyList_SetSlice(queue, 0, n, kept) < 0)
        goto fail;
    Py_DECREF(kept);
    self->heap_dead = 0;
    return heap_heapify(queue);
fail:
    Py_DECREF(kept);
    return -1;
}

static int
cengine_note_cancel_internal(CEngineObject *self, PyObject *event)
{
    int in_wheel;
    if (CEvent_CheckExact(event)) {
        in_wheel = ((CEventObject *)event)->in_wheel;
    }
    else {
        PyObject *v = PyObject_GetAttr(event, s_in_wheel);
        if (v == NULL)
            return -1;
        in_wheel = PyObject_IsTrue(v);
        Py_DECREF(v);
        if (in_wheel < 0)
            return -1;
    }
    if (in_wheel) {
        PyObject *live = PyObject_GetAttr(self->wheel, s_live);
        if (live == NULL)
            return -1;
        long long lv = PyLong_AsLongLong(live);
        Py_DECREF(live);
        if (lv == -1 && PyErr_Occurred())
            return -1;
        PyObject *nv = PyLong_FromLongLong(lv - 1);
        if (nv == NULL)
            return -1;
        int r = PyObject_SetAttr(self->wheel, s_live, nv);
        Py_DECREF(nv);
        return r;
    }
    long long dead = self->heap_dead + 1;
    self->heap_dead = dead;
    if (dead >= COMPACT_MIN_DEAD_C && dead * 2 > PyList_GET_SIZE(self->queue))
        return cengine_compact(self);
    return 0;
}

/* wheel.flush(limit) */
static int
cengine_wheel_flush(CEngineObject *self, long long limit)
{
    PyObject *lo = PyLong_FromLongLong(limit);
    if (lo == NULL)
        return -1;
    PyObject *r = PyObject_CallMethodObjArgs(self->wheel, s_flush, lo, NULL);
    Py_DECREF(lo);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* peek_time body; *have = 0 when idle. */
static int
cengine_peek_internal(CEngineObject *self, long long *out, int *have)
{
    PyObject *queue = self->queue;
    for (;;) {
        /* Drop cancelled 3-tuple heads. */
        for (;;) {
            if (PyList_GET_SIZE(queue) == 0)
                break;
            PyObject *head = PyList_GET_ITEM(queue, 0);
            if (!(PyTuple_CheckExact(head) && PyTuple_GET_SIZE(head) == 3))
                break;
            PyObject *ev = PyTuple_GET_ITEM(head, 2);
            int cancelled;
            if (CEvent_CheckExact(ev)) {
                cancelled = ((CEventObject *)ev)->cancelled;
            }
            else {
                PyObject *c = PyObject_GetAttr(ev, s_cancelled);
                if (c == NULL)
                    return -1;
                cancelled = PyObject_IsTrue(c);
                Py_DECREF(c);
                if (cancelled < 0)
                    return -1;
            }
            if (!cancelled)
                break;
            PyObject *popped = heap_pop(queue);
            if (popped == NULL)
                return -1;
            Py_DECREF(popped);
            self->heap_dead -= 1;
        }
        long long wmin = self->wheel_min;
        long long head_time = 0;
        int have_head = PyList_GET_SIZE(queue) > 0;
        if (have_head) {
            head_time = PyLong_AsLongLong(
                PyTuple_GET_ITEM(PyList_GET_ITEM(queue, 0), 0));
            if (head_time == -1 && PyErr_Occurred())
                return -1;
        }
        if (wmin == NEVER_LL || (have_head && head_time < wmin))
            break;
        if (cengine_wheel_flush(self, have_head ? head_time : wmin) < 0)
            return -1;
    }
    if (PyList_GET_SIZE(queue) > 0) {
        long long t = PyLong_AsLongLong(
            PyTuple_GET_ITEM(PyList_GET_ITEM(queue, 0), 0));
        if (t == -1 && PyErr_Occurred())
            return -1;
        *out = t;
        *have = 1;
    }
    else {
        *have = 0;
    }
    return 0;
}

/* fn(*fargs) through the vectorcall fast path when fargs is a real
 * tuple (heap entries always carry one). Small arg counts go through
 * a stack buffer with PY_VECTORCALL_ARGUMENTS_OFFSET so bound-method
 * callees can prepend self without reallocating. */
static inline PyObject *
call_with_tuple(PyObject *fn, PyObject *fargs)
{
    if (PyTuple_CheckExact(fargs)) {
        Py_ssize_t na = PyTuple_GET_SIZE(fargs);
        if (na < 8) {
            PyObject *buf[9];
            buf[0] = NULL;
            for (Py_ssize_t i = 0; i < na; i++)
                buf[i + 1] = PyTuple_GET_ITEM(fargs, i);
            return PyObject_Vectorcall(
                fn, buf + 1, (size_t)na | PY_VECTORCALL_ARGUMENTS_OFFSET,
                NULL);
        }
        return PyObject_Vectorcall(
            fn, &((PyTupleObject *)fargs)->ob_item[0], (size_t)na, NULL);
    }
    return PyObject_Call(fn, fargs, NULL);
}

/* One event dispatch, with optional attribution. Returns -1 on error. */
static int
cengine_dispatch(PyObject *fn, PyObject *fargs, PyObject *attr)
{
    PyObject *res;
    if (attr == NULL || attr == Py_None) {
        if (Py_TYPE(fn) == &KernelMethodType && PyTuple_CheckExact(fargs))
            return km_invoke_fast(fn, fargs);
        res = call_with_tuple(fn, fargs);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    long long t0 = monotonic_ns();
    res = call_with_tuple(fn, fargs);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    long long dt = monotonic_ns() - t0;
    PyObject *key = PyObject_GetAttr(fn, s_qualname);
    if (key == NULL || key == Py_None) {
        PyErr_Clear();
        Py_XDECREF(key);
        key = PyObject_Repr(fn);
        if (key == NULL)
            return -1;
    }
    PyObject *rec = PyDict_GetItemWithError(attr, key);
    if (rec == NULL) {
        if (PyErr_Occurred()) {
            Py_DECREF(key);
            return -1;
        }
        PyObject *calls = PyLong_FromLong(1);
        PyObject *total = PyLong_FromLongLong(dt);
        PyObject *lst = (calls && total) ? PyList_New(2) : NULL;
        if (lst == NULL) {
            Py_XDECREF(calls);
            Py_XDECREF(total);
            Py_DECREF(key);
            return -1;
        }
        PyList_SET_ITEM(lst, 0, calls);
        PyList_SET_ITEM(lst, 1, total);
        int r = PyDict_SetItem(attr, key, lst);
        Py_DECREF(lst);
        Py_DECREF(key);
        return r;
    }
    Py_DECREF(key);
    /* rec is [calls, total_ns] */
    long long calls = PyLong_AsLongLong(PyList_GET_ITEM(rec, 0));
    long long total = PyLong_AsLongLong(PyList_GET_ITEM(rec, 1));
    if ((calls == -1 || total == -1) && PyErr_Occurred())
        return -1;
    PyObject *nc = PyLong_FromLongLong(calls + 1);
    PyObject *nt = PyLong_FromLongLong(total + dt);
    if (nc == NULL || nt == NULL) {
        Py_XDECREF(nc);
        Py_XDECREF(nt);
        return -1;
    }
    PyList_SetItem(rec, 0, nc);
    PyList_SetItem(rec, 1, nt);
    return 0;
}

/* Shared run loop. gc_dance/use_attr distinguish run() from run_window(). */
static PyObject *
cengine_run_common(CEngineObject *self, int until_given, long long until,
                   long long stop_at, int gc_dance)
{
    if (self->running) {
        PyErr_SetString(SimulationErrorObj, "engine is not reentrant");
        return NULL;
    }
    self->running = 1;
    long long processed = 0;
    PyObject *queue = self->queue;
    PyObject *attr = gc_dance ? Attribution : NULL;
    long long horizon = until_given ? until : NEVER_LL;
    PyObject *gc_prev = NULL;
    int gc_was_enabled = 0;
    int status = 0;

    if (gc_dance) {
        gc_prev = PyObject_CallObject(GcGetThreshold, NULL);
        if (gc_prev == NULL) {
            self->running = 0;
            return NULL;
        }
        PyObject *r = PyObject_Call(GcSetThreshold, GcRunThresholds, NULL);
        if (r == NULL) {
            Py_DECREF(gc_prev);
            self->running = 0;
            return NULL;
        }
        Py_DECREF(r);
        PyObject *en = PyObject_CallObject(GcIsEnabled, NULL);
        if (en == NULL)
            status = -1;
        else {
            gc_was_enabled = PyObject_IsTrue(en);
            Py_DECREF(en);
            if (gc_was_enabled < 0)
                status = -1;
        }
        if (status == 0) {
            r = PyObject_CallObject(GcDisable, NULL);
            if (r == NULL)
                status = -1;
            else
                Py_DECREF(r);
        }
    }

    while (status == 0) {
        if (PyList_GET_SIZE(queue) > 0) {
            PyObject *entry = heap_pop(queue);
            if (entry == NULL) {
                status = -1;
                break;
            }
            long long time;
            if (!ll_read_fast(PyTuple_GET_ITEM(entry, 0), &time)) {
                time = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 0));
                if (time == -1 && PyErr_Occurred()) {
                    Py_DECREF(entry);
                    status = -1;
                    break;
                }
            }
            if (self->wheel_min <= time) {
                if (heap_push(queue, entry) < 0) {
                    Py_DECREF(entry);
                    status = -1;
                    break;
                }
                Py_DECREF(entry);
                if (cengine_wheel_flush(self, time) < 0) {
                    status = -1;
                    break;
                }
                continue;
            }
            if (time > horizon) {
                if (heap_push(queue, entry) < 0)
                    status = -1;
                Py_DECREF(entry);
                break;
            }
            PyObject *fn, *fargs;
            PyObject *owned_fn = NULL, *owned_args = NULL;
            if (PyTuple_GET_SIZE(entry) == 4) {
                fn = PyTuple_GET_ITEM(entry, 2);
                fargs = PyTuple_GET_ITEM(entry, 3);
            }
            else {
                PyObject *ev = PyTuple_GET_ITEM(entry, 2);
                if (CEvent_CheckExact(ev)) {
                    CEventObject *cev = (CEventObject *)ev;
                    if (cev->cancelled) {
                        self->heap_dead -= 1;
                        Py_DECREF(entry);
                        continue;
                    }
                    fn = cev->fn;
                    fargs = cev->args;
                }
                else {
                    PyObject *c = PyObject_GetAttr(ev, s_cancelled);
                    if (c == NULL) {
                        Py_DECREF(entry);
                        status = -1;
                        break;
                    }
                    int t = PyObject_IsTrue(c);
                    Py_DECREF(c);
                    if (t < 0) {
                        Py_DECREF(entry);
                        status = -1;
                        break;
                    }
                    if (t) {
                        self->heap_dead -= 1;
                        Py_DECREF(entry);
                        continue;
                    }
                    owned_fn = PyObject_GetAttr(ev, s_fn);
                    owned_args = owned_fn ? PyObject_GetAttr(ev, s_args) : NULL;
                    if (owned_args == NULL) {
                        Py_XDECREF(owned_fn);
                        Py_DECREF(entry);
                        status = -1;
                        break;
                    }
                    fn = owned_fn;
                    fargs = owned_args;
                }
            }
            self->now = time;
            int r = cengine_dispatch(fn, fargs, attr);
            Py_XDECREF(owned_fn);
            Py_XDECREF(owned_args);
            Py_DECREF(entry);
            if (r < 0) {
                status = -1;
                break;
            }
            processed += 1;
            if (processed == stop_at)
                break;
        }
        else {
            long long wmin = self->wheel_min;
            if (wmin == NEVER_LL || wmin > horizon)
                break;
            if (cengine_wheel_flush(self, wmin) < 0) {
                status = -1;
                break;
            }
        }
    }

    /* finally: restore running flag and GC state (even on error). */
    self->running = 0;
    if (gc_dance) {
        PyObject *exc_type, *exc_val, *exc_tb;
        PyErr_Fetch(&exc_type, &exc_val, &exc_tb);
        if (gc_prev != NULL) {
            PyObject *r = PyObject_Call(GcSetThreshold, gc_prev, NULL);
            Py_XDECREF(r);
            Py_DECREF(gc_prev);
        }
        if (gc_was_enabled > 0) {
            PyObject *r = PyObject_CallObject(GcEnable, NULL);
            Py_XDECREF(r);
        }
        PyErr_Restore(exc_type, exc_val, exc_tb);
    }
    if (status < 0)
        return NULL;

    if (until_given && self->now < until) {
        long long peek;
        int have;
        if (cengine_peek_internal(self, &peek, &have) < 0)
            return NULL;
        if (!have || peek > until)
            self->now = until;
    }
    self->events_processed += processed;
    return PyLong_FromLongLong(processed);
}

static PyObject *
cengine_run(CEngineObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", "max_events", NULL};
    PyObject *until_o = Py_None, *max_o = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|OO", kwlist, &until_o, &max_o))
        return NULL;
    int until_given = until_o != Py_None;
    long long until = 0, stop_at = -1;
    if (until_given) {
        until = PyLong_AsLongLong(until_o);
        if (until == -1 && PyErr_Occurred())
            return NULL;
    }
    if (max_o != Py_None) {
        stop_at = PyLong_AsLongLong(max_o);
        if (stop_at == -1 && PyErr_Occurred())
            return NULL;
    }
    return cengine_run_common(self, until_given, until, stop_at, 1);
}

static PyObject *
cengine_run_window(CEngineObject *self, PyObject *arg)
{
    long long until = PyLong_AsLongLong(arg);
    if (until == -1 && PyErr_Occurred())
        return NULL;
    return cengine_run_common(self, 1, until, -1, 0);
}

static PyObject *
cengine_step(CEngineObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *n = cengine_run_common(self, 0, 0, 1, 1);
    if (n == NULL)
        return NULL;
    long long v = PyLong_AsLongLong(n);
    Py_DECREF(n);
    if (v == -1 && PyErr_Occurred())
        return NULL;
    return PyBool_FromLong(v == 1);
}

/* -- CEngine scheduling ---------------------------------------------------- */

/* Push (time, seq, event) for a fresh CEvent; returns the event. */
static PyObject *
cengine_schedule_event(CEngineObject *self, long long time, PyObject *fn,
                       PyObject *fargs)
{
    long long seq = self->seq;
    self->seq = seq + 1;
    CEventObject *ev = cevent_make(time, seq, fn, fargs, (PyObject *)self);
    if (ev == NULL)
        return NULL;
    PyObject *to = PyLong_FromLongLong(time);
    PyObject *so = to ? PyLong_FromLongLong(seq) : NULL;
    PyObject *entry = so ? PyTuple_Pack(3, to, so, (PyObject *)ev) : NULL;
    Py_XDECREF(to);
    Py_XDECREF(so);
    if (entry == NULL) {
        Py_DECREF(ev);
        return NULL;
    }
    int r = heap_push(self->queue, entry);
    Py_DECREF(entry);
    if (r < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    return (PyObject *)ev;
}

/* Build the callback-args tuple from fastcall args[skip:]. */
static PyObject *
pack_rest(PyObject *const *args, Py_ssize_t nargs, Py_ssize_t skip)
{
    if (nargs == skip) {
        Py_INCREF(EmptyTuple);
        return EmptyTuple;
    }
    PyObject *t = PyTuple_New(nargs - skip);
    if (t == NULL)
        return NULL;
    for (Py_ssize_t i = skip; i < nargs; i++) {
        Py_INCREF(args[i]);
        PyTuple_SET_ITEM(t, i - skip, args[i]);
    }
    return t;
}

static PyObject *
cengine_schedule(CEngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "schedule(delay, fn, *args)");
        return NULL;
    }
    long long delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationErrorObj, "cannot schedule %lld ns in the past", delay);
        return NULL;
    }
    PyObject *fargs = pack_rest(args, nargs, 2);
    if (fargs == NULL)
        return NULL;
    PyObject *ev = cengine_schedule_event(self, self->now + delay, args[1], fargs);
    Py_DECREF(fargs);
    return ev;
}

static PyObject *
cengine_schedule_at(CEngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "schedule_at(time, fn, *args)");
        return NULL;
    }
    long long time = PyLong_AsLongLong(args[0]);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < self->now) {
        PyErr_Format(SimulationErrorObj,
                     "cannot schedule at t=%lld, current time is %lld",
                     time, self->now);
        return NULL;
    }
    PyObject *fargs = pack_rest(args, nargs, 2);
    if (fargs == NULL)
        return NULL;
    PyObject *ev = cengine_schedule_event(self, time, args[1], fargs);
    Py_DECREF(fargs);
    return ev;
}

static PyObject *
cengine_schedule_anon(CEngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "schedule_anon(delay, fn, *args)");
        return NULL;
    }
    long long delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationErrorObj, "cannot schedule %lld ns in the past", delay);
        return NULL;
    }
    long long seq = self->seq;
    self->seq = seq + 1;
    PyObject *fargs = pack_rest(args, nargs, 2);
    if (fargs == NULL)
        return NULL;
    int r = heap_push_anon(self->queue, self->now + delay, seq, args[1], fargs);
    Py_DECREF(fargs);
    if (r < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
cengine_schedule_timer_common(CEngineObject *self, long long time,
                              PyObject *fn, PyObject *fargs)
{
    long long seq = self->seq;
    self->seq = seq + 1;
    CEventObject *ev = cevent_make(time, seq, fn, fargs, (PyObject *)self);
    if (ev == NULL)
        return NULL;
    PyObject *r = PyObject_CallMethodObjArgs(self->wheel, s_add, (PyObject *)ev, NULL);
    if (r == NULL) {
        Py_DECREF(ev);
        return NULL;
    }
    Py_DECREF(r);
    return (PyObject *)ev;
}

static PyObject *
cengine_schedule_timer(CEngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "schedule_timer(delay, fn, *args)");
        return NULL;
    }
    long long delay = PyLong_AsLongLong(args[0]);
    if (delay == -1 && PyErr_Occurred())
        return NULL;
    if (delay < 0) {
        PyErr_Format(SimulationErrorObj, "cannot schedule %lld ns in the past", delay);
        return NULL;
    }
    PyObject *fargs = pack_rest(args, nargs, 2);
    if (fargs == NULL)
        return NULL;
    PyObject *ev = cengine_schedule_timer_common(self, self->now + delay,
                                                 args[1], fargs);
    Py_DECREF(fargs);
    return ev;
}

static PyObject *
cengine_schedule_timer_at(CEngineObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError, "schedule_timer_at(time, fn, *args)");
        return NULL;
    }
    long long time = PyLong_AsLongLong(args[0]);
    if (time == -1 && PyErr_Occurred())
        return NULL;
    if (time < self->now) {
        PyErr_Format(SimulationErrorObj,
                     "cannot schedule at t=%lld, current time is %lld",
                     time, self->now);
        return NULL;
    }
    PyObject *fargs = pack_rest(args, nargs, 2);
    if (fargs == NULL)
        return NULL;
    PyObject *ev = cengine_schedule_timer_common(self, time, args[1], fargs);
    Py_DECREF(fargs);
    return ev;
}

/* -- CEngine misc methods -------------------------------------------------- */

static PyObject *
cengine_note_cancel(CEngineObject *self, PyObject *event)
{
    if (cengine_note_cancel_internal(self, event) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
cengine_compact_method(CEngineObject *self, PyObject *Py_UNUSED(ignored))
{
    if (cengine_compact(self) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
cengine_peek_time(CEngineObject *self, PyObject *Py_UNUSED(ignored))
{
    long long t;
    int have;
    if (cengine_peek_internal(self, &t, &have) < 0)
        return NULL;
    if (!have)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(t);
}

/* -- CEngine lifecycle, getsets, type ------------------------------------- */

static PyObject *
cengine_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    CEngineObject *self = (CEngineObject *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->queue = NULL;
    self->wheel = NULL;
    self->seq = 0;
    self->now = 0;
    self->events_processed = 0;
    self->heap_dead = 0;
    self->wheel_min = NEVER_LL;
    self->port_rank = 0;
    self->running = 0;
    return (PyObject *)self;
}

static int
cengine_init(CEngineObject *self, PyObject *args, PyObject *kwds)
{
    if ((args && PyTuple_GET_SIZE(args)) || (kwds && PyDict_GET_SIZE(kwds))) {
        PyErr_SetString(PyExc_TypeError, "CEngine() takes no arguments");
        return -1;
    }
    PyObject *queue = PyList_New(0);
    if (queue == NULL)
        return -1;
    Py_XSETREF(self->queue, queue);
    PyObject *wheel = PyObject_CallFunctionObjArgs(TimerWheelCls,
                                                   (PyObject *)self, NULL);
    if (wheel == NULL)
        return -1;
    Py_XSETREF(self->wheel, wheel);
    self->seq = 0;
    self->now = 0;
    self->events_processed = 0;
    self->heap_dead = 0;
    self->wheel_min = NEVER_LL;
    self->port_rank = 0;
    self->running = 0;
    return 0;
}

static int
cengine_traverse(CEngineObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->queue);
    Py_VISIT(self->wheel);
    return 0;
}

static int
cengine_clear_gc(CEngineObject *self)
{
    Py_CLEAR(self->queue);
    Py_CLEAR(self->wheel);
    return 0;
}

static void
cengine_dealloc(CEngineObject *self)
{
    PyObject_GC_UnTrack(self);
    cengine_clear_gc(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

#define LL_GETSET(name, field)                                              \
    static PyObject *cengine_get_##name(CEngineObject *s, void *c)          \
    { return PyLong_FromLongLong(s->field); }                               \
    static int cengine_set_##name(CEngineObject *s, PyObject *v, void *c)   \
    {                                                                       \
        long long x = PyLong_AsLongLong(v);                                 \
        if (x == -1 && PyErr_Occurred()) return -1;                         \
        s->field = x;                                                       \
        return 0;                                                           \
    }

LL_GETSET(now, now)
LL_GETSET(seq, seq)
LL_GETSET(events_processed, events_processed)
LL_GETSET(heap_dead, heap_dead)
LL_GETSET(wheel_min, wheel_min)
LL_GETSET(port_rank, port_rank)

static PyObject *
cengine_get_queue(CEngineObject *self, void *closure)
{
    Py_INCREF(self->queue);
    return self->queue;
}

static PyObject *
cengine_get_wheel(CEngineObject *self, void *closure)
{
    Py_INCREF(self->wheel);
    return self->wheel;
}

static PyObject *
cengine_get_running(CEngineObject *self, void *closure)
{
    return PyBool_FromLong(self->running);
}

static PyObject *
cengine_get_pending(CEngineObject *self, void *closure)
{
    PyObject *live_o = PyObject_GetAttr(self->wheel, s_live);
    if (live_o == NULL)
        return NULL;
    long long wlive = PyLong_AsLongLong(live_o);
    Py_DECREF(live_o);
    if (wlive == -1 && PyErr_Occurred())
        return NULL;
    long long live = PyList_GET_SIZE(self->queue) - self->heap_dead + wlive;
    return PyLong_FromLongLong(live > 0 ? live : 0);
}

static PyObject *
cengine_get_pending_total(CEngineObject *self, void *closure)
{
    PyObject *tot = PyObject_CallMethod(self->wheel, "total_entries", NULL);
    if (tot == NULL)
        return NULL;
    long long wt = PyLong_AsLongLong(tot);
    Py_DECREF(tot);
    if (wt == -1 && PyErr_Occurred())
        return NULL;
    return PyLong_FromLongLong(PyList_GET_SIZE(self->queue) + wt);
}

static PyGetSetDef cengine_getset[] = {
    {"now", (getter)cengine_get_now, (setter)cengine_set_now, NULL, NULL},
    {"_seq", (getter)cengine_get_seq, (setter)cengine_set_seq, NULL, NULL},
    {"_events_processed", (getter)cengine_get_events_processed,
     (setter)cengine_set_events_processed, NULL, NULL},
    {"events_processed", (getter)cengine_get_events_processed, NULL, NULL, NULL},
    {"_heap_dead", (getter)cengine_get_heap_dead, (setter)cengine_set_heap_dead,
     NULL, NULL},
    {"_wheel_min", (getter)cengine_get_wheel_min, (setter)cengine_set_wheel_min,
     NULL, NULL},
    {"_port_rank", (getter)cengine_get_port_rank, (setter)cengine_set_port_rank,
     NULL, NULL},
    {"_queue", (getter)cengine_get_queue, NULL, NULL, NULL},
    {"_wheel", (getter)cengine_get_wheel, NULL, NULL, NULL},
    {"_running", (getter)cengine_get_running, NULL, NULL, NULL},
    {"pending", (getter)cengine_get_pending, NULL, NULL, NULL},
    {"pending_total", (getter)cengine_get_pending_total, NULL, NULL, NULL},
    {NULL},
};

static PyMethodDef cengine_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))cengine_schedule, METH_FASTCALL,
     "Schedule fn(*args) to run delay ns from now."},
    {"schedule_at", (PyCFunction)(void (*)(void))cengine_schedule_at, METH_FASTCALL,
     "Schedule fn(*args) at absolute simulated time."},
    {"schedule_anon", (PyCFunction)(void (*)(void))cengine_schedule_anon, METH_FASTCALL,
     "Schedule fn(*args) with no cancellation handle (bare 4-tuple entry)."},
    {"schedule_timer", (PyCFunction)(void (*)(void))cengine_schedule_timer, METH_FASTCALL,
     "Schedule a coarse timer delay ns from now (timer wheel)."},
    {"schedule_timer_at", (PyCFunction)(void (*)(void))cengine_schedule_timer_at,
     METH_FASTCALL, "Absolute-time variant of schedule_timer."},
    {"run", (PyCFunction)(void (*)(void))cengine_run, METH_VARARGS | METH_KEYWORDS,
     "Run until the queue drains, `until` ns is reached, or max_events."},
    {"run_window", (PyCFunction)cengine_run_window, METH_O,
     "Run one conservative-lookahead window: every event <= until."},
    {"step", (PyCFunction)cengine_step, METH_NOARGS,
     "Process exactly one (non-cancelled) event."},
    {"peek_time", (PyCFunction)cengine_peek_time, METH_NOARGS,
     "Timestamp of the next live event, or None when idle."},
    {"_note_cancel", (PyCFunction)cengine_note_cancel, METH_O, NULL},
    {"_compact", (PyCFunction)cengine_compact_method, METH_NOARGS, NULL},
    {NULL},
};

static PyTypeObject CEngineType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.CEngine",
    .tp_basicsize = sizeof(CEngineObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled discrete-event engine (drop-in for repro.sim.engine.Engine).",
    .tp_new = cengine_new,
    .tp_init = (initproc)cengine_init,
    .tp_dealloc = (destructor)cengine_dealloc,
    .tp_traverse = (traverseproc)cengine_traverse,
    .tp_clear = (inquiry)cengine_clear_gc,
    .tp_methods = cengine_methods,
    .tp_getset = cengine_getset,
};

/* ---------------------------------------------------------------------------
 * Kernels: per-instance compiled fast paths bound by
 * repro.sim.backend.optimize_network.  Each exposes KernelMethod
 * callables; binding is attribute shadowing, so the Python methods
 * remain reachable and audit/interceptor rebinding keeps working.
 * ------------------------------------------------------------------------- */

enum {
    KM_SWITCH_RECEIVE,
    KM_SWITCH_POLL,
    KM_HOST_SEND,
    KM_HOST_POLL,
    KM_HOST_SINK,
    KM_PORT_TX_DONE,
    KM_PORT_DRAIN,
};

typedef struct {
    PyObject_HEAD
    PyObject *kernel;    /* owning SwitchKernel/HostKernel/PortKernel */
    int which;
    PyObject *qualname;
} KernelMethodObject;

typedef struct {
    PyObject_HEAD
    PyObject *port;              /* exact repro.net.link.Port */
    CEngineObject *engine;
    PyObject *inflight;          /* port._inflight deque */
    PyObject *in_append, *in_popleft;
    PyObject *tx_done_m, *drain_m;
    long long rate_bps, delay_ns;
} PortKernelObject;

typedef struct {
    PyObject_HEAD
    PyObject *sw;
    CEngineObject *engine;
    PyObject *routes;            /* fib._routes dict (mutated in place) */
    PyObject *fib_lookup;        /* bound fib.lookup */
    PyObject *buffer;
    PyObject *stats;
    PyObject *ports;             /* device.ports list */
    PyObject *drop;              /* bound switch._drop */
    PyObject *config;            /* config object; fields read per call */
    PyObject *pfc;               /* PfcEngine or None */
    PyObject *pfc_on_admit, *pfc_on_release;  /* bound, or NULL when no PFC */
    PyObject *receive_m, *poll_m;
} SwitchKernelObject;

typedef struct {
    PyObject_HEAD
    PyObject *host;
    CEngineObject *engine;
    PyObject *nicqueue;          /* host.nic.queue deque */
    PyObject *nq_append, *nq_popleft;
    PyObject *endpoints;         /* host.endpoints dict (mutated in place) */
    PyObject *port;              /* host.port */
    PyObject *send_m, *poll_m, *sink_m;
} HostKernelObject;

static PyTypeObject KernelMethodType;
static PyTypeObject PortKernelType;
static PyTypeObject SwitchKernelType;
static PyTypeObject HostKernelType;

static int c_switch_receive(SwitchKernelObject *sk, PyObject *packet, PyObject *in_port);
static PyObject *c_switch_poll(SwitchKernelObject *sk, PyObject *port);
static int c_host_send(HostKernelObject *hk, PyObject *packet);
static PyObject *c_host_poll(HostKernelObject *hk, PyObject *port);
static int c_host_sink(HostKernelObject *hk, PyObject *packet, PyObject *in_port);
static int c_port_tx_done(PortKernelObject *pk, PyObject *packet);
static int c_port_drain(PortKernelObject *pk);
static int pk_kick(PortKernelObject *pk);

/* -- KernelMethod ---------------------------------------------------------- */

static PyObject *
km_new_internal(PyObject *kernel, int which, const char *qualname)
{
    KernelMethodObject *self =
        (KernelMethodObject *)KernelMethodType.tp_alloc(&KernelMethodType, 0);
    if (self == NULL)
        return NULL;
    Py_INCREF(kernel);
    self->kernel = kernel;
    self->which = which;
    self->qualname = PyUnicode_InternFromString(qualname);
    if (self->qualname == NULL) {
        Py_DECREF(self);
        return NULL;
    }
    return (PyObject *)self;
}

static PyObject *
km_call(KernelMethodObject *self, PyObject *args, PyObject *kwargs)
{
    if (kwargs != NULL && PyDict_GET_SIZE(kwargs) != 0) {
        PyErr_SetString(PyExc_TypeError, "kernel methods take no keyword arguments");
        return NULL;
    }
    Py_ssize_t n = PyTuple_GET_SIZE(args);
    switch (self->which) {
    case KM_SWITCH_RECEIVE:
        if (n != 2)
            break;
        if (c_switch_receive((SwitchKernelObject *)self->kernel,
                             PyTuple_GET_ITEM(args, 0),
                             PyTuple_GET_ITEM(args, 1)) < 0)
            return NULL;
        Py_RETURN_NONE;
    case KM_SWITCH_POLL:
        if (n != 1)
            break;
        return c_switch_poll((SwitchKernelObject *)self->kernel,
                             PyTuple_GET_ITEM(args, 0));
    case KM_HOST_SEND:
        if (n != 1)
            break;
        if (c_host_send((HostKernelObject *)self->kernel,
                        PyTuple_GET_ITEM(args, 0)) < 0)
            return NULL;
        Py_RETURN_NONE;
    case KM_HOST_POLL:
        if (n != 1)
            break;
        return c_host_poll((HostKernelObject *)self->kernel,
                           PyTuple_GET_ITEM(args, 0));
    case KM_HOST_SINK:
        if (n != 2)
            break;
        if (c_host_sink((HostKernelObject *)self->kernel,
                        PyTuple_GET_ITEM(args, 0),
                        PyTuple_GET_ITEM(args, 1)) < 0)
            return NULL;
        Py_RETURN_NONE;
    case KM_PORT_TX_DONE:
        if (n != 1)
            break;
        if (c_port_tx_done((PortKernelObject *)self->kernel,
                           PyTuple_GET_ITEM(args, 0)) < 0)
            return NULL;
        Py_RETURN_NONE;
    case KM_PORT_DRAIN:
        if (n != 0)
            break;
        if (c_port_drain((PortKernelObject *)self->kernel) < 0)
            return NULL;
        Py_RETURN_NONE;
    default:
        PyErr_SetString(PyExc_SystemError, "corrupt kernel method");
        return NULL;
    }
    PyErr_Format(PyExc_TypeError, "%U: wrong number of arguments", self->qualname);
    return NULL;
}

/* Event-loop fast path: dispatch a scheduled kernel method straight to
 * its C entry point (no argument tuple re-packing, no call protocol).
 * Behavior matches km_call exactly; results of poll-style methods are
 * discarded like any event callback's return value. */
static int
km_invoke_fast(PyObject *fn, PyObject *fargs)
{
    KernelMethodObject *self = (KernelMethodObject *)fn;
    Py_ssize_t n = PyTuple_GET_SIZE(fargs);
    PyObject *res;
    switch (self->which) {
    case KM_PORT_DRAIN:
        if (n != 0)
            break;
        return c_port_drain((PortKernelObject *)self->kernel);
    case KM_PORT_TX_DONE:
        if (n != 1)
            break;
        return c_port_tx_done((PortKernelObject *)self->kernel,
                              PyTuple_GET_ITEM(fargs, 0));
    case KM_SWITCH_RECEIVE:
        if (n != 2)
            break;
        return c_switch_receive((SwitchKernelObject *)self->kernel,
                                PyTuple_GET_ITEM(fargs, 0),
                                PyTuple_GET_ITEM(fargs, 1));
    case KM_SWITCH_POLL:
        if (n != 1)
            break;
        res = c_switch_poll((SwitchKernelObject *)self->kernel,
                            PyTuple_GET_ITEM(fargs, 0));
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    case KM_HOST_SEND:
        if (n != 1)
            break;
        return c_host_send((HostKernelObject *)self->kernel,
                           PyTuple_GET_ITEM(fargs, 0));
    case KM_HOST_POLL:
        if (n != 1)
            break;
        res = c_host_poll((HostKernelObject *)self->kernel,
                          PyTuple_GET_ITEM(fargs, 0));
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    case KM_HOST_SINK:
        if (n != 2)
            break;
        return c_host_sink((HostKernelObject *)self->kernel,
                           PyTuple_GET_ITEM(fargs, 0),
                           PyTuple_GET_ITEM(fargs, 1));
    default:
        PyErr_SetString(PyExc_SystemError, "corrupt kernel method");
        return -1;
    }
    PyErr_Format(PyExc_TypeError, "%U: wrong number of arguments", self->qualname);
    return -1;
}

static int
km_traverse(KernelMethodObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->kernel);
    return 0;
}

static int
km_clear(KernelMethodObject *self)
{
    Py_CLEAR(self->kernel);
    Py_CLEAR(self->qualname);
    return 0;
}

static void
km_dealloc(KernelMethodObject *self)
{
    PyObject_GC_UnTrack(self);
    km_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
km_get_qualname(KernelMethodObject *self, void *closure)
{
    Py_INCREF(self->qualname);
    return self->qualname;
}

static PyObject *
km_get_name(KernelMethodObject *self, void *closure)
{
    /* Last dotted component of the qualname. */
    Py_ssize_t len = PyUnicode_GET_LENGTH(self->qualname);
    Py_ssize_t dot = PyUnicode_FindChar(self->qualname, '.', 0, len, -1);
    if (dot < 0)
        return km_get_qualname(self, closure);
    return PyUnicode_Substring(self->qualname, dot + 1, len);
}

static PyObject *
km_get_self(KernelMethodObject *self, void *closure)
{
    Py_INCREF(self->kernel);
    return self->kernel;
}

static PyObject *
km_repr(KernelMethodObject *self)
{
    return PyUnicode_FromFormat("<compiled kernel method %U>", self->qualname);
}

static PyGetSetDef km_getset[] = {
    {"__qualname__", (getter)km_get_qualname, NULL, NULL, NULL},
    {"__name__", (getter)km_get_name, NULL, NULL, NULL},
    {"__self__", (getter)km_get_self, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject KernelMethodType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.KernelMethod",
    .tp_basicsize = sizeof(KernelMethodObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Bound compiled kernel entry point.",
    .tp_call = (ternaryfunc)km_call,
    .tp_dealloc = (destructor)km_dealloc,
    .tp_traverse = (traverseproc)km_traverse,
    .tp_clear = (inquiry)km_clear,
    .tp_repr = (reprfunc)km_repr,
    .tp_getset = km_getset,
};

/* -- shared kernel helpers -------------------------------------------------- */

/* owner.poll(port) with direct dispatch when the owner is kernel-bound.
 * Returns a new reference (packet or None). */
static PyObject *
c_owner_poll(PyObject *owner, PyObject *port)
{
    PyObject *pollfn = PyObject_GetAttr(owner, s_poll);
    if (pollfn == NULL)
        return NULL;
    PyObject *res;
    if (Py_TYPE(pollfn) == &KernelMethodType) {
        KernelMethodObject *km = (KernelMethodObject *)pollfn;
        if (km->which == KM_SWITCH_POLL)
            res = c_switch_poll((SwitchKernelObject *)km->kernel, port);
        else if (km->which == KM_HOST_POLL)
            res = c_host_poll((HostKernelObject *)km->kernel, port);
        else
            res = PyObject_CallFunctionObjArgs(pollfn, port, NULL);
    }
    else {
        res = PyObject_CallFunctionObjArgs(pollfn, port, NULL);
    }
    Py_DECREF(pollfn);
    return res;
}

/* Port.kick() on an arbitrary port object: direct C path when the
 * port's _tx_cb is a compiled kernel method, generic method call
 * otherwise (CutPort, legacy-batching ports, test doubles). */
static int
c_try_kick(PyObject *port)
{
    PyObject *cb = GETSLOT(port, P_tx_cb);
    if (cb != NULL && Py_TYPE(cb) == &KernelMethodType &&
        ((KernelMethodObject *)cb)->which == KM_PORT_TX_DONE) {
        return pk_kick((PortKernelObject *)((KernelMethodObject *)cb)->kernel);
    }
    PyObject *r = PyObject_CallMethodObjArgs(port, s_kick, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* Deliver one in-flight frame to the peer's owner, resolving
 * owner.receive/receive_pause at delivery time (interceptor chains and
 * audit rebinding installed mid-flight must see the frame). */
static int
c_deliver_frame(PyObject *peer, long long kind, PyObject *payload)
{
    PyObject *peer_owner = GETSLOT(peer, P_owner);
    if (peer_owner == NULL) {
        PyErr_SetString(PyExc_AttributeError, "port has no owner");
        return -1;
    }
    Py_INCREF(peer_owner);
    int status = 0;
    if (kind == 0) {  /* FRAME_PACKET */
        PyObject *recv = PyObject_GetAttr(peer_owner, s_receive);
        if (recv == NULL) {
            Py_DECREF(peer_owner);
            return -1;
        }
        if (Py_TYPE(recv) == &KernelMethodType) {
            KernelMethodObject *km = (KernelMethodObject *)recv;
            if (km->which == KM_SWITCH_RECEIVE)
                status = c_switch_receive((SwitchKernelObject *)km->kernel,
                                          payload, peer);
            else if (km->which == KM_HOST_SINK)
                status = c_host_sink((HostKernelObject *)km->kernel,
                                     payload, peer);
            else {
                PyObject *r = PyObject_CallFunctionObjArgs(recv, payload, peer, NULL);
                status = (r == NULL) ? -1 : 0;
                Py_XDECREF(r);
            }
        }
        else {
            PyObject *r = PyObject_CallFunctionObjArgs(recv, payload, peer, NULL);
            status = (r == NULL) ? -1 : 0;
            Py_XDECREF(r);
        }
        Py_DECREF(recv);
    }
    else {  /* FRAME_PAUSE */
        PyObject *r = PyObject_CallMethodObjArgs(peer_owner, s_receive_pause,
                                                 payload, peer, NULL);
        status = (r == NULL) ? -1 : 0;
        Py_XDECREF(r);
    }
    Py_DECREF(peer_owner);
    return status;
}

/* -- PortKernel ------------------------------------------------------------ */

/* Start serializing `packet` on pk's port (the tail of kick/_tx_done). */
static int
pk_transmit(PortKernelObject *pk, PyObject *packet)
{
    PyObject *port = pk->port;
    if (slot_store_bool(port, P_busy, 1) < 0)
        return -1;
    long long size;
    if (slot_ll(packet, K_size, &size) < 0)
        return -1;
    long long v;
    if (slot_ll(port, P_tx_bytes, &v) < 0 ||
        slot_store_ll(port, P_tx_bytes, v + size) < 0)
        return -1;
    if (slot_ll(port, P_tx_packets, &v) < 0 ||
        slot_store_ll(port, P_tx_packets, v + 1) < 0)
        return -1;
    CEngineObject *eng = pk->engine;
    long long seq = eng->seq;
    eng->seq = seq + 1;
    /* Read the rate live (one slot load): the fault layer's
       link_degrade rescales port.rate_bps mid-run, and serialization
       time must follow it exactly as the pure-Python path does. */
    long long rate;
    if (slot_ll(port, P_rate_bps, &rate) < 0)
        return -1;
    long long tt = c_tx_time_ns(size, rate);
    if (tt < 0)
        return -1;
    PyObject *args = PyTuple_Pack(1, packet);
    if (args == NULL)
        return -1;
    int r = heap_push_anon(eng->queue, eng->now + tt, seq, pk->tx_done_m, args);
    Py_DECREF(args);
    return r;
}

/* Port.kick(): poll the owner and start transmitting if idle. */
static int
pk_kick(PortKernelObject *pk)
{
    PyObject *port = pk->port;
    int busy = slot_truth(port, P_busy);
    if (busy)
        return busy < 0 ? -1 : 0;
    int paused = slot_truth(port, P_paused);
    if (paused)
        return paused < 0 ? -1 : 0;
    int down = slot_truth(port, P_down);
    if (down)
        return down < 0 ? -1 : 0;
    PyObject *owner = GETSLOT(port, P_owner);
    if (owner == NULL) {
        PyErr_SetString(PyExc_AttributeError, "port has no owner");
        return -1;
    }
    PyObject *packet = c_owner_poll(owner, port);
    if (packet == NULL)
        return -1;
    if (packet == Py_None) {
        Py_DECREF(packet);
        return 0;
    }
    int r = pk_transmit(pk, packet);
    Py_DECREF(packet);
    return r;
}

/* Port._tx_done(packet): serialization finished — enqueue the frame on
 * the in-flight FIFO (arming the drain when the FIFO was empty) and
 * immediately try the next packet (inlined kick, busy known False). */
static int
c_port_tx_done(PortKernelObject *pk, PyObject *packet)
{
    PyObject *port = pk->port;
    CEngineObject *eng = pk->engine;
    PyObject *pd = GETSLOT(port, P_peer_deliver);
    if (pd != NULL && pd != Py_None) {
        long long seq;
        if (slot_ll(port, P_wire_seq, &seq) < 0)
            return -1;
        if (slot_store_ll(port, P_wire_seq, seq + 1) < 0)
            return -1;
        long long arrival = eng->now + pk->delay_ns;
        Py_ssize_t n = PyObject_Size(pk->inflight);
        if (n < 0)
            return -1;
        if (n == 0) {
            if (heap_push_anon(eng->queue, arrival, seq, pk->drain_m, EmptyTuple) < 0)
                return -1;
        }
        PyObject *ao = PyLong_FromLongLong(arrival);
        if (ao == NULL)
            return -1;
        PyObject *so = PyLong_FromLongLong(seq);
        if (so == NULL) {
            Py_DECREF(ao);
            return -1;
        }
        PyObject *rec = PyTuple_Pack(4, ao, so, LLZero, packet);
        Py_DECREF(ao);
        Py_DECREF(so);
        if (rec == NULL)
            return -1;
        PyObject *r = PyObject_CallFunctionObjArgs(pk->in_append, rec, NULL);
        Py_DECREF(rec);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
    }
    if (slot_store_bool(port, P_busy, 0) < 0)
        return -1;
    int paused = slot_truth(port, P_paused);
    if (paused)
        return paused < 0 ? -1 : 0;
    int down = slot_truth(port, P_down);
    if (down)
        return down < 0 ? -1 : 0;
    PyObject *owner = GETSLOT(port, P_owner);
    if (owner == NULL) {
        PyErr_SetString(PyExc_AttributeError, "port has no owner");
        return -1;
    }
    PyObject *next = c_owner_poll(owner, port);
    if (next == NULL)
        return -1;
    if (next == Py_None) {
        Py_DECREF(next);
        return 0;
    }
    int r = pk_transmit(pk, next);
    Py_DECREF(next);
    return r;
}

/* Port._drain(): deliver this port's due in-flight burst. Mirrors the
 * pure method exactly: pop the head, re-arm the next head *before*
 * dispatching, compensate events_processed for bursts. */
static int
c_port_drain(PortKernelObject *pk)
{
    CEngineObject *eng = pk->engine;
    PyObject *head = PyObject_CallNoArgs(pk->in_popleft);
    if (head == NULL)
        return -1;
    if (!PyTuple_CheckExact(head) || PyTuple_GET_SIZE(head) != 4) {
        Py_DECREF(head);
        PyErr_SetString(PyExc_TypeError, "corrupt in-flight entry");
        return -1;
    }
    long long arrival = PyLong_AsLongLong(PyTuple_GET_ITEM(head, 0));
    if (arrival == -1 && PyErr_Occurred()) {
        Py_DECREF(head);
        return -1;
    }
    Py_ssize_t n = PyObject_Size(pk->inflight);
    if (n < 0) {
        Py_DECREF(head);
        return -1;
    }
    PyObject *peer = GETSLOT(pk->port, P_peer);
    if (peer == NULL || peer == Py_None) {
        Py_DECREF(head);
        PyErr_SetString(PyExc_AttributeError, "port has no peer");
        return -1;
    }
    Py_INCREF(peer);
    if (n > 0) {
        PyObject *nxt = PySequence_GetItem(pk->inflight, 0);
        if (nxt == NULL)
            goto fail_head;
        long long na = PyLong_AsLongLong(PyTuple_GET_ITEM(nxt, 0));
        if (na == -1 && PyErr_Occurred()) {
            Py_DECREF(nxt);
            goto fail_head;
        }
        if (na == arrival) {
            /* Same-ns burst: collect every due frame, re-arm, deliver. */
            Py_DECREF(nxt);
            PyObject *due = PyList_New(0);
            if (due == NULL)
                goto fail_head;
            if (PyList_Append(due, head) < 0) {
                Py_DECREF(due);
                goto fail_head;
            }
            Py_CLEAR(head);
            for (;;) {
                Py_ssize_t m = PyObject_Size(pk->inflight);
                if (m < 0)
                    goto fail_due;
                if (m == 0)
                    break;
                PyObject *peek = PySequence_GetItem(pk->inflight, 0);
                if (peek == NULL)
                    goto fail_due;
                long long pa = PyLong_AsLongLong(PyTuple_GET_ITEM(peek, 0));
                if (pa == -1 && PyErr_Occurred()) {
                    Py_DECREF(peek);
                    goto fail_due;
                }
                if (pa != arrival) {
                    /* Re-arm the next head before dispatching. */
                    PyObject *entry = PyTuple_Pack(4, PyTuple_GET_ITEM(peek, 0),
                                                   PyTuple_GET_ITEM(peek, 1),
                                                   pk->drain_m, EmptyTuple);
                    Py_DECREF(peek);
                    if (entry == NULL)
                        goto fail_due;
                    int pr = heap_push(eng->queue, entry);
                    Py_DECREF(entry);
                    if (pr < 0)
                        goto fail_due;
                    break;
                }
                Py_DECREF(peek);
                PyObject *e = PyObject_CallNoArgs(pk->in_popleft);
                if (e == NULL)
                    goto fail_due;
                int ar = PyList_Append(due, e);
                Py_DECREF(e);
                if (ar < 0)
                    goto fail_due;
            }
            eng->events_processed += (long long)PyList_GET_SIZE(due) - 1;
            for (Py_ssize_t i = 0; i < PyList_GET_SIZE(due); i++) {
                PyObject *e = PyList_GET_ITEM(due, i);
                long long kind = PyLong_AsLongLong(PyTuple_GET_ITEM(e, 2));
                if (kind == -1 && PyErr_Occurred())
                    goto fail_due;
                if (c_deliver_frame(peer, kind, PyTuple_GET_ITEM(e, 3)) < 0)
                    goto fail_due;
            }
            Py_DECREF(due);
            Py_DECREF(peer);
            return 0;
        fail_due:
            Py_DECREF(due);
            goto fail_head;
        }
        /* Spaced frames: re-arm the next head, then deliver this one. */
        PyObject *entry = PyTuple_Pack(4, PyTuple_GET_ITEM(nxt, 0),
                                       PyTuple_GET_ITEM(nxt, 1),
                                       pk->drain_m, EmptyTuple);
        Py_DECREF(nxt);
        if (entry == NULL)
            goto fail_head;
        int pr = heap_push(eng->queue, entry);
        Py_DECREF(entry);
        if (pr < 0)
            goto fail_head;
    }
    {
        long long kind = PyLong_AsLongLong(PyTuple_GET_ITEM(head, 2));
        if (kind == -1 && PyErr_Occurred())
            goto fail_head;
        int r = c_deliver_frame(peer, kind, PyTuple_GET_ITEM(head, 3));
        Py_DECREF(head);
        Py_DECREF(peer);
        return r;
    }
fail_head:
    Py_XDECREF(head);
    Py_DECREF(peer);
    return -1;
}

static int
pk_traverse(PortKernelObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->port);
    Py_VISIT((PyObject *)self->engine);
    Py_VISIT(self->inflight);
    Py_VISIT(self->in_append);
    Py_VISIT(self->in_popleft);
    Py_VISIT(self->tx_done_m);
    Py_VISIT(self->drain_m);
    return 0;
}

static int
pk_clear(PortKernelObject *self)
{
    Py_CLEAR(self->port);
    Py_CLEAR(self->engine);
    Py_CLEAR(self->inflight);
    Py_CLEAR(self->in_append);
    Py_CLEAR(self->in_popleft);
    Py_CLEAR(self->tx_done_m);
    Py_CLEAR(self->drain_m);
    return 0;
}

static void
pk_dealloc(PortKernelObject *self)
{
    PyObject_GC_UnTrack(self);
    pk_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
pk_init(PortKernelObject *self, PyObject *args, PyObject *kwargs)
{
    PyObject *port;
    if (!PyArg_ParseTuple(args, "O:PortKernel", &port))
        return -1;
    PyObject *engine = GETSLOT(port, P_engine);
    if (engine == NULL || !CEngine_CheckExact(engine)) {
        PyErr_SetString(PyExc_TypeError,
                        "PortKernel requires a port driven by a CEngine");
        return -1;
    }
    PyObject *inflight = GETSLOT(port, P_inflight);
    if (inflight == NULL) {
        PyErr_SetString(PyExc_TypeError, "port has no in-flight FIFO");
        return -1;
    }
    long long rate, delay;
    if (slot_ll(port, P_rate_bps, &rate) < 0 ||
        slot_ll(port, P_delay_ns, &delay) < 0)
        return -1;
    Py_INCREF(port);
    Py_XSETREF(self->port, port);
    Py_INCREF(engine);
    Py_XSETREF(self->engine, (CEngineObject *)engine);
    Py_INCREF(inflight);
    Py_XSETREF(self->inflight, inflight);
    self->rate_bps = rate;
    self->delay_ns = delay;
    PyObject *m = PyObject_GetAttr(inflight, s_append);
    if (m == NULL)
        return -1;
    Py_XSETREF(self->in_append, m);
    m = PyObject_GetAttr(inflight, s_popleft);
    if (m == NULL)
        return -1;
    Py_XSETREF(self->in_popleft, m);
    m = km_new_internal((PyObject *)self, KM_PORT_TX_DONE, "PortKernel.tx_done");
    if (m == NULL)
        return -1;
    Py_XSETREF(self->tx_done_m, m);
    m = km_new_internal((PyObject *)self, KM_PORT_DRAIN, "PortKernel.drain");
    if (m == NULL)
        return -1;
    Py_XSETREF(self->drain_m, m);
    return 0;
}

static PyObject *
pk_get_tx_done(PortKernelObject *self, void *closure)
{
    if (self->tx_done_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->tx_done_m);
    return self->tx_done_m;
}

static PyObject *
pk_get_drain(PortKernelObject *self, void *closure)
{
    if (self->drain_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->drain_m);
    return self->drain_m;
}

static PyObject *
pk_get_port(PortKernelObject *self, void *closure)
{
    if (self->port == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->port);
    return self->port;
}

static PyGetSetDef pk_getset[] = {
    {"tx_done", (getter)pk_get_tx_done, NULL, NULL, NULL},
    {"drain", (getter)pk_get_drain, NULL, NULL, NULL},
    {"port", (getter)pk_get_port, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject PortKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.PortKernel",
    .tp_basicsize = sizeof(PortKernelObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled serialization/delivery fast path for one Port.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)pk_init,
    .tp_dealloc = (destructor)pk_dealloc,
    .tp_traverse = (traverseproc)pk_traverse,
    .tp_clear = (inquiry)pk_clear,
    .tp_getset = pk_getset,
};

/* -- SwitchKernel ---------------------------------------------------------- */

static PyObject *PortCls;             /* repro.net.link.Port */
static PyObject *s_port_no;           /* "port_no" */
static PyObject *s_receive_fast_name; /* "_receive_fast" */
static PyObject *s_poll_fast_name;    /* "_poll_fast" */

#define COLOR_RED 1LL
#define KIND_DATA 0LL

/* Fall back to the pure class implementation (exotic port doubles). */
static PyObject *
sw_call_pure(PyObject *sw, PyObject *name, PyObject *a, PyObject *b)
{
    PyObject *fn = PyObject_GetAttr((PyObject *)Py_TYPE(sw), name);
    if (fn == NULL)
        return NULL;
    PyObject *r = b != NULL
        ? PyObject_CallFunctionObjArgs(fn, sw, a, b, NULL)
        : PyObject_CallFunctionObjArgs(fn, sw, a, NULL);
    Py_DECREF(fn);
    return r;
}

static int
c_switch_receive(SwitchKernelObject *sk, PyObject *packet, PyObject *in_port)
{
    /* Non-Port ingress (test doubles): take the pure path. */
    if (!PyObject_TypeCheck(in_port, (PyTypeObject *)PortCls)) {
        PyObject *r = sw_call_pure(sk->sw, s_receive_fast_name, packet, in_port);
        if (r == NULL)
            return -1;
        Py_DECREF(r);
        return 0;
    }

    /* Routing: fib._routes[packet.dst], single-path open-coded. */
    PyObject *dst = GETSLOT(packet, K_dst);
    if (dst == NULL) {
        PyErr_SetString(PyExc_AttributeError, "packet has no dst");
        return -1;
    }
    PyObject *routes = PyDict_GetItemWithError(sk->routes, dst);  /* borrowed */
    if (routes == NULL) {
        if (!PyErr_Occurred())
            PyErr_SetObject(PyExc_KeyError, dst);
        return -1;
    }
    long long egress;
    if (PyTuple_CheckExact(routes) && PyTuple_GET_SIZE(routes) == 1) {
        egress = PyLong_AsLongLong(PyTuple_GET_ITEM(routes, 0));
        if (egress == -1 && PyErr_Occurred())
            return -1;
    }
    else {
        PyObject *fid = GETSLOT(packet, K_flow_id);
        if (fid == NULL) {
            PyErr_SetString(PyExc_AttributeError, "packet has no flow_id");
            return -1;
        }
        PyObject *eo = PyObject_CallFunctionObjArgs(sk->fib_lookup, dst, fid, NULL);
        if (eo == NULL)
            return -1;
        egress = PyLong_AsLongLong(eo);
        Py_DECREF(eo);
        if (egress == -1 && PyErr_Occurred())
            return -1;
    }

    /* Per-call: _port_queues and config fields are reassigned/mutated
     * by the incremental-deployment experiments after build. */
    PyObject *pq_all = PyObject_GetAttr(sk->sw, s_port_queues);
    if (pq_all == NULL)
        return -1;
    PyObject *pq = PySequence_GetItem(pq_all, (Py_ssize_t)egress);
    Py_DECREF(pq_all);
    if (pq == NULL)
        return -1;
    PyObject *pqf = PySequence_Fast(pq, "port queues must be a sequence");
    Py_DECREF(pq);
    if (pqf == NULL)
        return -1;
    Py_ssize_t nclasses = PySequence_Fast_GET_SIZE(pqf);
    PyObject **qarr = PySequence_Fast_ITEMS(pqf);
    if (nclasses < 1) {
        Py_DECREF(pqf);
        PyErr_SetString(PyExc_IndexError, "switch port has no queues");
        return -1;
    }
    long long tclass = 0;
    PyObject *queue;
    if (nclasses == 1)
        queue = qarr[0];
    else {
        if (slot_ll(packet, K_tclass, &tclass) < 0)
            goto fail;
        if (!(0 <= tclass && tclass < (long long)nclasses))
            tclass = 0;
        queue = qarr[tclass];
    }
    long long size, color;
    if (slot_ll(packet, K_size, &size) < 0 ||
        slot_ll(packet, K_color, &color) < 0)
        goto fail;

    /* 1. Color-aware dropping of unimportant packets. */
    {
        PyObject *kobj = PyObject_GetAttr(sk->config, s_color_threshold_bytes);
        if (kobj == NULL)
            goto fail;
        if (kobj != Py_None && color == COLOR_RED) {
            long long k = PyLong_AsLongLong(kobj);
            if (k == -1 && PyErr_Occurred()) {
                Py_DECREF(kobj);
                goto fail;
            }
            long long redb;
            if (slot_ll(queue, Q_red_bytes, &redb) < 0) {
                Py_DECREF(kobj);
                goto fail;
            }
            if (redb + size > k) {
                PyObject *cc = PyObject_GetAttr(sk->config, s_color_classes);
                if (cc == NULL) {
                    Py_DECREF(kobj);
                    goto fail;
                }
                int in_cc = 1;
                if (cc != Py_None) {
                    PyObject *tco = PyLong_FromLongLong(tclass);
                    in_cc = (tco == NULL) ? -1 : PySequence_Contains(cc, tco);
                    Py_XDECREF(tco);
                }
                Py_DECREF(cc);
                if (in_cc < 0) {
                    Py_DECREF(kobj);
                    goto fail;
                }
                if (in_cc) {
                    Py_DECREF(kobj);
                    PyObject *r = PyObject_CallFunctionObjArgs(
                        sk->drop, packet, s_color_str, queue, NULL);
                    Py_DECREF(pqf);
                    if (r == NULL)
                        return -1;
                    Py_DECREF(r);
                    return 0;
                }
            }
        }
        Py_DECREF(kobj);
    }

    /* 2. Dynamic-threshold admission. */
    {
        long long port_occ = 0;
        if (nclasses == 1) {
            if (slot_ll(queue, Q_occupancy, &port_occ) < 0)
                goto fail;
        }
        else {
            for (Py_ssize_t i = 0; i < nclasses; i++) {
                long long v;
                if (slot_ll(qarr[i], Q_occupancy, &v) < 0)
                    goto fail;
                port_occ += v;
            }
        }
        long long used, cap;
        if (slot_ll(sk->buffer, B_used, &used) < 0 ||
            slot_ll(sk->buffer, B_capacity, &cap) < 0)
            goto fail;
        PyObject *reason = NULL;
        if (used + size > cap)
            reason = s_pool_str;
        else if (sk->pfc == Py_None) {
            PyObject *alpha = GETSLOT(sk->buffer, B_alpha);
            if (alpha == NULL) {
                PyErr_SetString(PyExc_AttributeError, "buffer has no alpha");
                goto fail;
            }
            double a = PyFloat_AsDouble(alpha);
            if (a == -1.0 && PyErr_Occurred())
                goto fail;
            if ((double)port_occ >= a * (double)(cap - used))
                reason = s_dynamic_str;
        }
        if (reason != NULL) {
            PyObject *occo = PyLong_FromLongLong(port_occ);
            if (occo == NULL)
                goto fail;
            PyObject *r = PyObject_CallFunctionObjArgs(
                sk->drop, packet, reason, queue, occo, NULL);
            Py_DECREF(occo);
            Py_DECREF(pqf);
            if (r == NULL)
                return -1;
            Py_DECREF(r);
            return 0;
        }

        /* SharedBuffer.reserve + EgressQueue.push, open-coded. */
        used += size;
        if (slot_store_ll(sk->buffer, B_used, used) < 0)
            goto fail;
        long long peak;
        if (slot_ll(sk->buffer, B_peak_used, &peak) < 0)
            goto fail;
        if (used > peak && slot_store_ll(sk->buffer, B_peak_used, used) < 0)
            goto fail;
    }
    {
        PyObject *qd = GETSLOT(queue, Q_items);
        if (qd == NULL) {
            PyErr_SetString(PyExc_AttributeError, "queue has no items");
            goto fail;
        }
        PyObject *ipno = GETSLOT(in_port, P_port_no);
        if (ipno == NULL) {
            PyErr_SetString(PyExc_AttributeError, "port has no port_no");
            goto fail;
        }
        Py_INCREF(ipno);
        PyObject *pair = PyTuple_Pack(2, packet, ipno);
        if (pair == NULL) {
            Py_DECREF(ipno);
            goto fail;
        }
        PyObject *r = PyObject_CallMethodObjArgs(qd, s_append, pair, NULL);
        Py_DECREF(pair);
        if (r == NULL) {
            Py_DECREF(ipno);
            goto fail;
        }
        Py_DECREF(r);
        long long occ;
        if (slot_ll(queue, Q_occupancy, &occ) < 0)
            goto fail_ipno;
        occ += size;
        if (slot_store_ll(queue, Q_occupancy, occ) < 0)
            goto fail_ipno;
        if (color == COLOR_RED) {
            long long red, maxred;
            if (slot_ll(queue, Q_red_bytes, &red) < 0)
                goto fail_ipno;
            red += size;
            if (slot_store_ll(queue, Q_red_bytes, red) < 0)
                goto fail_ipno;
            if (slot_ll(queue, Q_max_red_bytes, &maxred) < 0)
                goto fail_ipno;
            if (red > maxred && slot_store_ll(queue, Q_max_red_bytes, red) < 0)
                goto fail_ipno;
        }
        long long maxocc;
        if (slot_ll(queue, Q_max_occupancy, &maxocc) < 0)
            goto fail_ipno;
        if (occ > maxocc && slot_store_ll(queue, Q_max_occupancy, occ) < 0)
            goto fail_ipno;

        /* 3. ECN marking on the post-enqueue queue length. */
        {
            PyObject *ecn = PyObject_GetAttr(sk->sw, s_ecn);
            if (ecn == NULL)
                goto fail_ipno;
            if (ecn != Py_None) {
                int cap_ = slot_truth(packet, K_ecn_capable);
                if (cap_ < 0) {
                    Py_DECREF(ecn);
                    goto fail_ipno;
                }
                if (cap_) {
                    int ce = slot_truth(packet, K_ce);
                    if (ce < 0) {
                        Py_DECREF(ecn);
                        goto fail_ipno;
                    }
                    if (!ce) {
                        int mark;
                        if ((PyObject *)Py_TYPE(ecn) == StepEcnCls) {
                            PyObject *kb = PyObject_GetAttr(ecn, s_k_bytes);
                            if (kb == NULL) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            long long kbv = PyLong_AsLongLong(kb);
                            Py_DECREF(kb);
                            if (kbv == -1 && PyErr_Occurred()) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            mark = occ > kbv;
                        }
                        else {
                            PyObject *occo = PyLong_FromLongLong(occ);
                            if (occo == NULL) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            PyObject *m = PyObject_CallMethodObjArgs(
                                ecn, s_should_mark, occo, NULL);
                            Py_DECREF(occo);
                            if (m == NULL) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            mark = PyObject_IsTrue(m);
                            Py_DECREF(m);
                            if (mark < 0) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                        }
                        if (mark) {
                            if (slot_store_bool(packet, K_ce, 1) < 0) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            PyObject *em = PyObject_GetAttr(sk->stats, s_ecn_marks);
                            if (em == NULL) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            long long emv = PyLong_AsLongLong(em);
                            Py_DECREF(em);
                            if (emv == -1 && PyErr_Occurred()) {
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            PyObject *nem = PyLong_FromLongLong(emv + 1);
                            if (nem == NULL ||
                                PyObject_SetAttr(sk->stats, s_ecn_marks, nem) < 0) {
                                Py_XDECREF(nem);
                                Py_DECREF(ecn);
                                goto fail_ipno;
                            }
                            Py_DECREF(nem);
                        }
                    }
                }
            }
            Py_DECREF(ecn);
        }

        /* 4. PFC ingress accounting. */
        if (sk->pfc != Py_None) {
            PyObject *so = PyLong_FromLongLong(size);
            if (so == NULL)
                goto fail_ipno;
            PyObject *r2 = PyObject_CallFunctionObjArgs(sk->pfc_on_admit,
                                                        ipno, so, NULL);
            Py_DECREF(so);
            if (r2 == NULL)
                goto fail_ipno;
            Py_DECREF(r2);
        }
        Py_DECREF(ipno);
        goto kick;
    fail_ipno:
        Py_DECREF(ipno);
        goto fail;
    }
kick:
    {
        PyObject *port = PySequence_GetItem(sk->ports, (Py_ssize_t)egress);
        if (port == NULL)
            goto fail;
        int busy = slot_truth(port, P_busy);
        int paused = busy < 0 ? -1 : slot_truth(port, P_paused);
        if (paused < 0) {
            Py_DECREF(port);
            goto fail;
        }
        if (!busy && !paused && c_try_kick(port) < 0) {
            Py_DECREF(port);
            goto fail;
        }
        Py_DECREF(port);
    }
    Py_DECREF(pqf);
    return 0;
fail:
    Py_DECREF(pqf);
    return -1;
}

static PyObject *
c_switch_poll(SwitchKernelObject *sk, PyObject *port)
{
    /* Non-Port callers (test doubles): take the pure path. */
    if (!PyObject_TypeCheck(port, (PyTypeObject *)PortCls))
        return sw_call_pure(sk->sw, s_poll_fast_name, port, NULL);

    long long pno;
    if (slot_ll(port, P_port_no, &pno) < 0)
        return NULL;
    PyObject *pq_all = PyObject_GetAttr(sk->sw, s_port_queues);
    if (pq_all == NULL)
        return NULL;
    PyObject *pq = PySequence_GetItem(pq_all, (Py_ssize_t)pno);
    Py_DECREF(pq_all);
    if (pq == NULL)
        return NULL;
    PyObject *pqf = PySequence_Fast(pq, "port queues must be a sequence");
    Py_DECREF(pq);
    if (pqf == NULL)
        return NULL;
    Py_ssize_t nclasses = PySequence_Fast_GET_SIZE(pqf);
    PyObject **qarr = PySequence_Fast_ITEMS(pqf);
    if (nclasses < 1) {
        Py_DECREF(pqf);
        PyErr_SetString(PyExc_IndexError, "switch port has no queues");
        return NULL;
    }

    PyObject *entry = NULL;
    if (nclasses == 1) {
        /* EgressQueue.pop, open-coded. */
        PyObject *queue = qarr[0];
        PyObject *qd = GETSLOT(queue, Q_items);
        if (qd == NULL) {
            PyErr_SetString(PyExc_AttributeError, "queue has no items");
            goto fail;
        }
        Py_ssize_t qn = PyObject_Size(qd);
        if (qn < 0)
            goto fail;
        if (qn == 0) {
            Py_DECREF(pqf);
            Py_RETURN_NONE;
        }
        entry = PyObject_CallMethodObjArgs(qd, s_popleft, NULL);
        if (entry == NULL)
            goto fail;
        PyObject *pkt = PyTuple_GET_ITEM(entry, 0);
        long long psize, pcolor, v;
        if (slot_ll(pkt, K_size, &psize) < 0 ||
            slot_ll(pkt, K_color, &pcolor) < 0)
            goto fail;
        if (slot_ll(queue, Q_occupancy, &v) < 0 ||
            slot_store_ll(queue, Q_occupancy, v - psize) < 0)
            goto fail;
        if (slot_ll(queue, Q_dequeued_bytes, &v) < 0 ||
            slot_store_ll(queue, Q_dequeued_bytes, v + psize) < 0)
            goto fail;
        if (pcolor == COLOR_RED) {
            if (slot_ll(queue, Q_red_bytes, &v) < 0 ||
                slot_store_ll(queue, Q_red_bytes, v - psize) < 0)
                goto fail;
        }
    }
    else {
        /* Round-robin over the per-class queues. */
        PyObject *rr = PyObject_GetAttr(sk->sw, s_rr);
        if (rr == NULL)
            goto fail;
        PyObject *so = PySequence_GetItem(rr, (Py_ssize_t)pno);
        if (so == NULL) {
            Py_DECREF(rr);
            goto fail;
        }
        long long start = PyLong_AsLongLong(so);
        Py_DECREF(so);
        if (start == -1 && PyErr_Occurred()) {
            Py_DECREF(rr);
            goto fail;
        }
        for (Py_ssize_t offset = 0; offset < nclasses; offset++) {
            Py_ssize_t idx = (Py_ssize_t)((start + offset) % nclasses);
            PyObject *queue = qarr[idx];
            PyObject *qd = GETSLOT(queue, Q_items);
            if (qd == NULL) {
                PyErr_SetString(PyExc_AttributeError, "queue has no items");
                Py_DECREF(rr);
                goto fail;
            }
            Py_ssize_t qn = PyObject_Size(qd);
            if (qn < 0) {
                Py_DECREF(rr);
                goto fail;
            }
            if (qn == 0)
                continue;
            entry = PyObject_CallMethodObjArgs(qd, s_popleft, NULL);
            if (entry == NULL) {
                Py_DECREF(rr);
                goto fail;
            }
            PyObject *pkt = PyTuple_GET_ITEM(entry, 0);
            long long psize, pcolor, v;
            if (slot_ll(pkt, K_size, &psize) < 0 ||
                slot_ll(pkt, K_color, &pcolor) < 0 ||
                slot_ll(queue, Q_occupancy, &v) < 0 ||
                slot_store_ll(queue, Q_occupancy, v - psize) < 0 ||
                slot_ll(queue, Q_dequeued_bytes, &v) < 0 ||
                slot_store_ll(queue, Q_dequeued_bytes, v + psize) < 0) {
                Py_DECREF(rr);
                goto fail;
            }
            if (pcolor == COLOR_RED &&
                (slot_ll(queue, Q_red_bytes, &v) < 0 ||
                 slot_store_ll(queue, Q_red_bytes, v - psize) < 0)) {
                Py_DECREF(rr);
                goto fail;
            }
            PyObject *nv = PyLong_FromLongLong((idx + 1) % nclasses);
            if (nv == NULL) {
                Py_DECREF(rr);
                goto fail;
            }
            int sr = PySequence_SetItem(rr, (Py_ssize_t)pno, nv);
            Py_DECREF(nv);
            if (sr < 0) {
                Py_DECREF(rr);
                goto fail;
            }
            break;
        }
        Py_DECREF(rr);
    }
    if (entry == NULL) {
        Py_DECREF(pqf);
        Py_RETURN_NONE;
    }

    {
        PyObject *packet = PyTuple_GET_ITEM(entry, 0);
        Py_INCREF(packet);
        PyObject *ingress = PyTuple_GET_ITEM(entry, 1);
        Py_INCREF(ingress);
        Py_CLEAR(entry);
        long long psize;
        if (slot_ll(packet, K_size, &psize) < 0)
            goto fail_pkt;

        /* SharedBuffer.release, open-coded (keeps the under-run check). */
        long long used;
        if (slot_ll(sk->buffer, B_used, &used) < 0)
            goto fail_pkt;
        used -= psize;
        if (slot_store_ll(sk->buffer, B_used, used) < 0)
            goto fail_pkt;
        if (used < 0) {
            PyErr_SetString(PyExc_AssertionError, "shared buffer under-run");
            goto fail_pkt;
        }
        if (sk->pfc != Py_None) {
            PyObject *so = PyLong_FromLongLong(psize);
            if (so == NULL)
                goto fail_pkt;
            PyObject *r = PyObject_CallFunctionObjArgs(sk->pfc_on_release,
                                                       ingress, so, NULL);
            Py_DECREF(so);
            if (r == NULL)
                goto fail_pkt;
            Py_DECREF(r);
        }

        /* INT (HPCC) record at dequeue time. */
        PyObject *ie = PyObject_GetAttr(sk->config, s_int_enabled);
        if (ie == NULL)
            goto fail_pkt;
        int int_on = PyObject_IsTrue(ie);
        Py_DECREF(ie);
        if (int_on < 0)
            goto fail_pkt;
        if (int_on) {
            long long kind;
            if (slot_ll(packet, K_kind, &kind) < 0)
                goto fail_pkt;
            PyObject *irs = GETSLOT(packet, K_int_records);
            if (kind == KIND_DATA && irs != NULL && irs != Py_None) {
                long long qlen = 0;
                for (Py_ssize_t i = 0; i < nclasses; i++) {
                    long long v;
                    if (slot_ll(qarr[i], Q_occupancy, &v) < 0)
                        goto fail_pkt;
                    qlen += v;
                }
                PyObject *qo = PyLong_FromLongLong(qlen);
                PyObject *no = qo ? PyLong_FromLongLong(sk->engine->now) : NULL;
                PyObject *txb = GETSLOT(port, P_tx_bytes);
                PyObject *rb = GETSLOT(port, P_rate_bps);
                if (qo == NULL || no == NULL || txb == NULL || rb == NULL) {
                    Py_XDECREF(qo);
                    Py_XDECREF(no);
                    if (!PyErr_Occurred())
                        PyErr_SetString(PyExc_AttributeError,
                                        "port missing tx_bytes/rate_bps");
                    goto fail_pkt;
                }
                PyObject *rec = PyObject_CallFunctionObjArgs(IntRecordCls,
                                                             qo, txb, no, rb, NULL);
                Py_DECREF(qo);
                Py_DECREF(no);
                if (rec == NULL)
                    goto fail_pkt;
                PyObject *r = PyObject_CallMethodObjArgs(packet, s_add_int_record,
                                                         rec, NULL);
                Py_DECREF(rec);
                if (r == NULL)
                    goto fail_pkt;
                Py_DECREF(r);
            }
        }
        Py_DECREF(ingress);
        Py_DECREF(pqf);
        return packet;
    fail_pkt:
        Py_DECREF(packet);
        Py_DECREF(ingress);
        goto fail;
    }
fail:
    Py_XDECREF(entry);
    Py_DECREF(pqf);
    return NULL;
}

static int
sk_traverse(SwitchKernelObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->sw);
    Py_VISIT((PyObject *)self->engine);
    Py_VISIT(self->routes);
    Py_VISIT(self->fib_lookup);
    Py_VISIT(self->buffer);
    Py_VISIT(self->stats);
    Py_VISIT(self->ports);
    Py_VISIT(self->drop);
    Py_VISIT(self->config);
    Py_VISIT(self->pfc);
    Py_VISIT(self->pfc_on_admit);
    Py_VISIT(self->pfc_on_release);
    Py_VISIT(self->receive_m);
    Py_VISIT(self->poll_m);
    return 0;
}

static int
sk_clear(SwitchKernelObject *self)
{
    Py_CLEAR(self->sw);
    Py_CLEAR(self->engine);
    Py_CLEAR(self->routes);
    Py_CLEAR(self->fib_lookup);
    Py_CLEAR(self->buffer);
    Py_CLEAR(self->stats);
    Py_CLEAR(self->ports);
    Py_CLEAR(self->drop);
    Py_CLEAR(self->config);
    Py_CLEAR(self->pfc);
    Py_CLEAR(self->pfc_on_admit);
    Py_CLEAR(self->pfc_on_release);
    Py_CLEAR(self->receive_m);
    Py_CLEAR(self->poll_m);
    return 0;
}

static void
sk_dealloc(SwitchKernelObject *self)
{
    PyObject_GC_UnTrack(self);
    sk_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
sk_init(SwitchKernelObject *self, PyObject *args, PyObject *kwargs)
{
    PyObject *sw;
    if (!PyArg_ParseTuple(args, "O:SwitchKernel", &sw))
        return -1;
    PyObject *engine = PyObject_GetAttr(sw, s_engine);
    if (engine == NULL)
        return -1;
    if (!CEngine_CheckExact(engine)) {
        Py_DECREF(engine);
        PyErr_SetString(PyExc_TypeError,
                        "SwitchKernel requires a switch driven by a CEngine");
        return -1;
    }
    Py_XSETREF(self->engine, (CEngineObject *)engine);
    Py_INCREF(sw);
    Py_XSETREF(self->sw, sw);

    PyObject *fib = PyObject_GetAttr(sw, s_fib);
    if (fib == NULL)
        return -1;
    PyObject *routes = PyObject_GetAttr(fib, s_routes);
    if (routes == NULL) {
        Py_DECREF(fib);
        return -1;
    }
    if (!PyDict_CheckExact(routes)) {
        Py_DECREF(routes);
        Py_DECREF(fib);
        PyErr_SetString(PyExc_TypeError, "fib._routes must be a dict");
        return -1;
    }
    Py_XSETREF(self->routes, routes);
    PyObject *lookup = PyObject_GetAttr(fib, s_lookup);
    Py_DECREF(fib);
    if (lookup == NULL)
        return -1;
    Py_XSETREF(self->fib_lookup, lookup);

    PyObject *o;
    if ((o = PyObject_GetAttr(sw, s_buffer)) == NULL)
        return -1;
    Py_XSETREF(self->buffer, o);
    if ((o = PyObject_GetAttr(sw, s_stats)) == NULL)
        return -1;
    Py_XSETREF(self->stats, o);
    if ((o = PyObject_GetAttr(sw, s_ports)) == NULL)
        return -1;
    Py_XSETREF(self->ports, o);
    if ((o = PyObject_GetAttr(sw, s_drop_m)) == NULL)
        return -1;
    Py_XSETREF(self->drop, o);
    if ((o = PyObject_GetAttr(sw, s_config)) == NULL)
        return -1;
    Py_XSETREF(self->config, o);
    if ((o = PyObject_GetAttr(sw, s_pfc)) == NULL)
        return -1;
    Py_XSETREF(self->pfc, o);
    if (self->pfc != Py_None) {
        if ((o = PyObject_GetAttr(self->pfc, s_on_admit)) == NULL)
            return -1;
        Py_XSETREF(self->pfc_on_admit, o);
        if ((o = PyObject_GetAttr(self->pfc, s_on_release)) == NULL)
            return -1;
        Py_XSETREF(self->pfc_on_release, o);
    }
    if ((o = km_new_internal((PyObject *)self, KM_SWITCH_RECEIVE,
                             "SwitchKernel.receive")) == NULL)
        return -1;
    Py_XSETREF(self->receive_m, o);
    if ((o = km_new_internal((PyObject *)self, KM_SWITCH_POLL,
                             "SwitchKernel.poll")) == NULL)
        return -1;
    Py_XSETREF(self->poll_m, o);
    return 0;
}

static PyObject *
sk_get_receive(SwitchKernelObject *self, void *closure)
{
    if (self->receive_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->receive_m);
    return self->receive_m;
}

static PyObject *
sk_get_poll(SwitchKernelObject *self, void *closure)
{
    if (self->poll_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->poll_m);
    return self->poll_m;
}

static PyObject *
sk_get_switch(SwitchKernelObject *self, void *closure)
{
    if (self->sw == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->sw);
    return self->sw;
}

static PyGetSetDef sk_getset[] = {
    {"receive", (getter)sk_get_receive, NULL, NULL, NULL},
    {"poll", (getter)sk_get_poll, NULL, NULL, NULL},
    {"switch", (getter)sk_get_switch, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject SwitchKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.SwitchKernel",
    .tp_basicsize = sizeof(SwitchKernelObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled enqueue/dequeue/MMU fast path for one Switch.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)sk_init,
    .tp_dealloc = (destructor)sk_dealloc,
    .tp_traverse = (traverseproc)sk_traverse,
    .tp_clear = (inquiry)sk_clear,
    .tp_getset = sk_getset,
};

/* -- HostKernel ------------------------------------------------------------ */

static int
c_host_send(HostKernelObject *hk, PyObject *packet)
{
    PyObject *r = PyObject_CallFunctionObjArgs(hk->nq_append, packet, NULL);
    if (r == NULL)
        return -1;
    Py_DECREF(r);
    PyObject *port = hk->port;
    int busy = slot_truth(port, P_busy);
    if (busy)
        return busy < 0 ? -1 : 0;
    int paused = slot_truth(port, P_paused);
    if (paused)
        return paused < 0 ? -1 : 0;
    return c_try_kick(port);
}

static PyObject *
c_host_poll(HostKernelObject *hk, PyObject *port)
{
    (void)port;
    Py_ssize_t n = PyObject_Size(hk->nicqueue);
    if (n < 0)
        return NULL;
    if (n > 0)
        return PyObject_CallNoArgs(hk->nq_popleft);
    Py_RETURN_NONE;
}

static PyObject *mod_alloc_packet(PyObject *module, PyObject *const *args,
                                  Py_ssize_t nargs, PyObject *kwnames);

/* DATA delivery to a stock ByteStreamReceiver, without entering
 * Python: TLT receive hook, scoreboard update, and the per-packet ACK
 * (alloc + SACK blocks + mark + send through this host's own kernel).
 * Covers the arrival shapes whose scoreboard update is a single edit —
 * cumulative advance, a fresh island past the tail, a contiguous tail
 * extension — which is the bulk of both the steady state and the
 * post-drop regime (each sender's stream keeps arriving in order, so a
 * hole turns into one tail island growing by one MSS per packet).
 *
 * Returns 1 when handled, 0 to defer to the Python on_packet (any
 * deviation: subclass/instance overrides, a wrapped host.send, stale
 * duplicates, arrivals that merge or swallow islands, non-
 * TltWindowReceiver controllers, the completion transition), and -1 on
 * error. All eligibility checks run before any mutation so the Python
 * path can always take over from untouched state. */
static int
c_receiver_on_packet(HostKernelObject *hk, PyObject *ep, PyObject *packet)
{
    if (Py_TYPE(packet) != (PyTypeObject *)PacketCls)
        return 0;
    if (GETSLOT(packet, K_kind) != KindDATAObj)
        return 0;

    /* The endpoint must use the stock receive pipeline. The type
     * lookup runs per packet (no verdict cache) so monkeypatching a
     * receiver class mid-run is honored. */
    PyObject **dictptr = _PyObject_GetDictPtr(ep);
    if (dictptr == NULL || *dictptr == NULL || !PyDict_CheckExact(*dictptr))
        return 0;
    PyObject *d = *dictptr;  /* borrowed */
    PyObject *v = PyDict_GetItemWithError(d, s_on_packet);
    if (v != NULL)
        return 0;  /* per-instance override */
    if (PyErr_Occurred())
        return -1;
    PyObject *fn = PyObject_GetAttr((PyObject *)Py_TYPE(ep), s_on_packet);
    if (fn == NULL) {
        PyErr_Clear();
        return 0;
    }
    int stock = (fn == BSReceiverOnPacket);
    Py_DECREF(fn);
    if (!stock)
        return 0;

    PyObject *tlt_rx = PyDict_GetItemWithError(d, s_tlt_rx);
    PyObject *buffer = PyDict_GetItemWithError(d, s_buffer);
    PyObject *done = PyDict_GetItemWithError(d, s_done);
    PyObject *spec = PyDict_GetItemWithError(d, s_spec);
    PyObject *config = PyDict_GetItemWithError(d, s_config);
    PyObject *rhost = PyDict_GetItemWithError(d, s_host_attr);
    if (tlt_rx == NULL || buffer == NULL || done == NULL || spec == NULL ||
        config == NULL || rhost == NULL)
        return PyErr_Occurred() ? -1 : 0;
    if (tlt_rx != Py_None && Py_TYPE(tlt_rx) != (PyTypeObject *)TltWindowReceiverCls)
        return 0;
    if (Py_TYPE(buffer) != (PyTypeObject *)ReceiverBufferCls)
        return 0;
    /* The ACK must leave through this kernel's send path; a wrapped or
     * re-bound host.send (fault injection, tracing) forces Python. */
    if (rhost != hk->host)
        return 0;
    PyObject *hsend = PyObject_GetAttr(rhost, s_send_attr);
    if (hsend == NULL)
        return -1;
    int own_send = (hsend == hk->send_m);
    Py_DECREF(hsend);
    if (!own_send)
        return 0;

    long long seq, payload, rcv_nxt;
    if (!ll_read_fast(GETSLOT(packet, K_seq), &seq) ||
        !ll_read_fast(GETSLOT(packet, K_payload), &payload))
        return 0;
    if (payload <= 0)
        return 0;
    PyObject *intervals = GETSLOT(buffer, R_intervals);
    if (intervals == NULL || !PyList_CheckExact(intervals))
        return 0;
    Py_ssize_t nislands = PyList_GET_SIZE(intervals);
    if (!ll_read_fast(GETSLOT(buffer, R_rcv_nxt), &rcv_nxt))
        return 0;
    long long end = seq + payload;
    if (end <= rcv_nxt)
        return 0;  /* stale duplicate */

    /* Classify against ReceiverBuffer.on_data's branches. Islands are
     * disjoint, sorted, never adjacent, strictly above rcv_nxt; any
     * arrival needing the general merge/swallow loop falls back. */
    enum {
        SHAPE_INORDER,        /* seq <= rcv_nxt, no islands */
        SHAPE_INORDER_AHEAD,  /* seq <= rcv_nxt, stays below the 1st island */
        SHAPE_NEW_ISLAND,     /* seq > rcv_nxt, strictly beyond the tail */
        SHAPE_EXTEND_TAIL     /* seq > rcv_nxt, contiguous with the tail */
    } shape;
    long long tail_lo = 0;
    if (seq <= rcv_nxt) {
        if (nislands == 0)
            shape = SHAPE_INORDER;
        else {
            PyObject *first = PyList_GET_ITEM(intervals, 0);
            long long first_lo;
            if (!PyTuple_CheckExact(first) || PyTuple_GET_SIZE(first) != 2 ||
                !ll_read_fast(PyTuple_GET_ITEM(first, 0), &first_lo))
                return 0;
            if (end >= first_lo)
                return 0;  /* merges or swallows an island */
            shape = SHAPE_INORDER_AHEAD;
        }
    } else {
        if (nislands == 0)
            shape = SHAPE_NEW_ISLAND;
        else {
            PyObject *tail = PyList_GET_ITEM(intervals, nislands - 1);
            long long tail_hi;
            if (!PyTuple_CheckExact(tail) || PyTuple_GET_SIZE(tail) != 2 ||
                !ll_read_fast(PyTuple_GET_ITEM(tail, 0), &tail_lo) ||
                !ll_read_fast(PyTuple_GET_ITEM(tail, 1), &tail_hi))
                return 0;
            if (seq == tail_hi)
                shape = SHAPE_EXTEND_TAIL;
            else if (seq > tail_hi)
                shape = SHAPE_NEW_ISLAND;
            else
                return 0;  /* overlaps an island or lands between islands */
        }
    }

    int done_true;
    if (done == Py_True)
        done_true = 1;
    else if (done == Py_False)
        done_true = 0;
    else {
        done_true = PyObject_IsTrue(done);
        if (done_true < 0)
            return -1;
    }
    if (!done_true) {
        PyObject *szo = PyObject_GetAttr(spec, s_size_attr);
        if (szo == NULL)
            return -1;
        long long spec_size;
        int ok = ll_read_fast(szo, &spec_size);
        Py_DECREF(szo);
        if (!ok)
            return 0;
        /* The in-order shapes advance rcv_nxt to `end`; the others
         * leave it alone. Either way, a completion transition (or any
         * inconsistent already-complete state) goes through Python. */
        long long nxt_after =
            (shape == SHAPE_INORDER || shape == SHAPE_INORDER_AHEAD) ? end : rcv_nxt;
        if (nxt_after >= spec_size)
            return 0;
    }

    /* -- eligibility established; mutate ---------------------------------- */

    /* TltWindowReceiver.on_data, inlined (enum members are singletons). */
    if (tlt_rx != Py_None) {
        PyObject *mark = GETSLOT(packet, K_mark);
        if (mark == MarkIMPDATAObj) {
            if (PyObject_SetAttr(tlt_rx, s_state, RecvIMPORTANTObj) < 0)
                return -1;
        } else if (mark == MarkIMPCLOCKDATAObj) {
            if (PyObject_SetAttr(tlt_rx, s_state, RecvIMPCLOCKObj) < 0)
                return -1;
        }
    }

    /* ReceiverBuffer.on_data, specialized per shape. */
    slot_store_obj(buffer, R_last_seq, GETSLOT(packet, K_seq));
    PyObject *endo = PyLong_FromLongLong(end);
    if (endo == NULL)
        return -1;
    if (shape == SHAPE_INORDER || shape == SHAPE_INORDER_AHEAD) {
        /* Cumulative advance; in the AHEAD case the islands stay put
         * (the merge loop would insert [rcv_nxt, end) at the front and
         * the swallow loop would immediately pop it back out). */
        PyObject *old = GETSLOT(buffer, R_rcv_nxt);
        Py_INCREF(endo);
        GETSLOT(buffer, R_rcv_nxt) = endo;
        Py_XDECREF(old);
    } else if (shape == SHAPE_NEW_ISLAND) {
        PyObject *island = PyTuple_Pack(2, GETSLOT(packet, K_seq), endo);
        if (island == NULL) {
            Py_DECREF(endo);
            return -1;
        }
        int rc = PyList_Append(intervals, island);
        Py_DECREF(island);
        if (rc < 0) {
            Py_DECREF(endo);
            return -1;
        }
        nislands += 1;
    } else { /* SHAPE_EXTEND_TAIL: [tail_lo, tail_hi) + [tail_hi, end) */
        PyObject *tail = PyList_GET_ITEM(intervals, nislands - 1);
        PyObject *island = PyTuple_Pack(2, PyTuple_GET_ITEM(tail, 0), endo);
        if (island == NULL) {
            Py_DECREF(endo);
            return -1;
        }
        if (PyList_SetItem(intervals, nislands - 1, island) < 0) {
            Py_DECREF(endo);
            return -1;
        }
    }

    /* _send_ack: alloc_packet(flow_id, dst, src, ACK, 0, 0, rcv_nxt). */
    PyObject *acknum = GETSLOT(buffer, R_rcv_nxt); /* post-update, borrowed */
    PyObject *fido = PyObject_GetAttr(spec, s_flow_id_attr);
    PyObject *dsto = fido ? PyObject_GetAttr(spec, s_dst_attr) : NULL;
    PyObject *srco = dsto ? PyObject_GetAttr(spec, s_src_attr) : NULL;
    if (srco == NULL) {
        Py_XDECREF(fido);
        Py_XDECREF(dsto);
        Py_DECREF(endo);
        return -1;
    }
    PyObject *aargs[7] = {fido, dsto, srco, KindACKObj, LLZero, LLZero, acknum};
    PyObject *ack = mod_alloc_packet(NULL, aargs, 7, NULL);
    Py_DECREF(fido);
    Py_DECREF(dsto);
    Py_DECREF(srco);
    Py_DECREF(endo);
    if (ack == NULL)
        return -1;
    /* ack.sack = sack_blocks() when islands are outstanding: the island
     * holding last_seq first (the tail for the out-of-order shapes; in
     * the INORDER_AHEAD case no island holds it), then list order,
     * capped at 3. INORDER leaves the allocator's (). */
    if (shape != SHAPE_INORDER && nislands > 0) {
        Py_ssize_t nb = nislands < 3 ? nislands : 3;
        PyObject *sack = PyTuple_New(nb);
        if (sack == NULL) {
            Py_DECREF(ack);
            return -1;
        }
        Py_ssize_t bi = 0;
        if (shape != SHAPE_INORDER_AHEAD) {
            PyObject *recent = PyList_GET_ITEM(intervals, nislands - 1);
            Py_INCREF(recent);
            PyTuple_SET_ITEM(sack, bi++, recent);
        }
        for (Py_ssize_t ii = 0; bi < nb; ii++) {
            PyObject *block = PyList_GET_ITEM(intervals, ii);
            Py_INCREF(block);
            PyTuple_SET_ITEM(sack, bi++, block);
        }
        slot_store_obj(ack, K_sack, sack);
        Py_DECREF(sack);
    }
    slot_store_obj(ack, K_ecn_echo, GETSLOT(packet, K_ce));
    slot_store_obj(ack, K_ts_echo, GETSLOT(packet, K_ts_sent));
    PyObject *tc = PyObject_GetAttr(config, s_traffic_class);
    if (tc == NULL) {
        Py_DECREF(ack);
        return -1;
    }
    slot_store_obj(ack, K_tclass, tc);
    Py_DECREF(tc);
    /* Pure ACKs are control packets: green from the allocator already. */
    slot_store_obj(ack, K_mark, MarkCONTROLObj);
    if (tlt_rx != Py_None) {
        /* TltWindowReceiver.mark_ack + apply_acl (echo marks are green). */
        PyObject *state = PyObject_GetAttr(tlt_rx, s_state);
        if (state == NULL) {
            Py_DECREF(ack);
            return -1;
        }
        if (state == RecvIMPORTANTObj) {
            slot_store_obj(ack, K_mark, MarkIMPECHOObj);
            if (PyObject_SetAttr(tlt_rx, s_state, RecvIDLEObj) < 0) {
                Py_DECREF(state);
                Py_DECREF(ack);
                return -1;
            }
        } else if (state == RecvIMPCLOCKObj) {
            slot_store_obj(ack, K_mark, MarkIMPCLOCKECHOObj);
            if (PyObject_SetAttr(tlt_rx, s_state, RecvIDLEObj) < 0) {
                Py_DECREF(state);
                Py_DECREF(ack);
                return -1;
            }
        }
        Py_DECREF(state);
    } else {
        PyObject *pc = PyObject_GetAttr(config, s_plain_color);
        if (pc == NULL) {
            Py_DECREF(ack);
            return -1;
        }
        if (pc != Py_None) {
            slot_store_obj(ack, K_color, pc);
            slot_store_obj(ack, K_mark, MarkNONEObj);
        }
        Py_DECREF(pc);
    }
    int status = c_host_send(hk, ack);
    Py_DECREF(ack);
    return status < 0 ? -1 : 1;
}

static int
c_host_sink(HostKernelObject *hk, PyObject *packet, PyObject *in_port)
{
    (void)in_port;
    PyObject *fid = GETSLOT(packet, K_flow_id);
    if (fid == NULL) {
        PyErr_SetString(PyExc_AttributeError, "packet has no flow_id");
        return -1;
    }
    PyObject *ep = PyDict_GetItemWithError(hk->endpoints, fid);
    if (ep == NULL && PyErr_Occurred())
        return -1;
    if (ep != NULL && ep != Py_None) {
        Py_INCREF(ep);
        int handled = c_receiver_on_packet(hk, ep, packet);
        if (handled < 0) {
            Py_DECREF(ep);
            return -1;
        }
        if (!handled) {
            PyObject *r = PyObject_CallMethodObjArgs(ep, s_on_packet, packet, NULL);
            if (r == NULL) {
                Py_DECREF(ep);
                return -1;
            }
            Py_DECREF(r);
        }
        Py_DECREF(ep);
    }
    /* recycle(packet), open-coded; _pool_enabled is re-read per call
     * (tests toggle it via set_pooling). */
    int pooled = slot_truth(packet, K_pooled);
    if (pooled)
        return pooled < 0 ? -1 : 0;
    PyObject *pe = PyObject_GetAttr(PacketModule, s_pool_enabled);
    if (pe == NULL)
        return -1;
    int enabled = PyObject_IsTrue(pe);
    Py_DECREF(pe);
    if (enabled < 0)
        return -1;
    if (!enabled)
        return 0;
    if (slot_store_bool(packet, K_pooled, 1) < 0)
        return -1;
    if (PyList_GET_SIZE(PacketPool) < 4096) {
        if (PyList_Append(PacketPool, packet) < 0)
            return -1;
    }
    return 0;
}

static int
hk_traverse(HostKernelObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->host);
    Py_VISIT((PyObject *)self->engine);
    Py_VISIT(self->nicqueue);
    Py_VISIT(self->nq_append);
    Py_VISIT(self->nq_popleft);
    Py_VISIT(self->endpoints);
    Py_VISIT(self->port);
    Py_VISIT(self->send_m);
    Py_VISIT(self->poll_m);
    Py_VISIT(self->sink_m);
    return 0;
}

static int
hk_clear(HostKernelObject *self)
{
    Py_CLEAR(self->host);
    Py_CLEAR(self->engine);
    Py_CLEAR(self->nicqueue);
    Py_CLEAR(self->nq_append);
    Py_CLEAR(self->nq_popleft);
    Py_CLEAR(self->endpoints);
    Py_CLEAR(self->port);
    Py_CLEAR(self->send_m);
    Py_CLEAR(self->poll_m);
    Py_CLEAR(self->sink_m);
    return 0;
}

static void
hk_dealloc(HostKernelObject *self)
{
    PyObject_GC_UnTrack(self);
    hk_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static int
hk_init(HostKernelObject *self, PyObject *args, PyObject *kwargs)
{
    PyObject *host;
    if (!PyArg_ParseTuple(args, "O:HostKernel", &host))
        return -1;
    PyObject *engine = PyObject_GetAttr(host, s_engine);
    if (engine == NULL)
        return -1;
    if (!CEngine_CheckExact(engine)) {
        Py_DECREF(engine);
        PyErr_SetString(PyExc_TypeError,
                        "HostKernel requires a host driven by a CEngine");
        return -1;
    }
    Py_XSETREF(self->engine, (CEngineObject *)engine);
    Py_INCREF(host);
    Py_XSETREF(self->host, host);

    PyObject *nic = PyObject_GetAttr(host, s_nic);
    if (nic == NULL)
        return -1;
    PyObject *q = PyObject_GetAttr(nic, s_queue_attr);
    Py_DECREF(nic);
    if (q == NULL)
        return -1;
    Py_XSETREF(self->nicqueue, q);
    PyObject *m = PyObject_GetAttr(q, s_append);
    if (m == NULL)
        return -1;
    Py_XSETREF(self->nq_append, m);
    m = PyObject_GetAttr(q, s_popleft);
    if (m == NULL)
        return -1;
    Py_XSETREF(self->nq_popleft, m);

    PyObject *eps = PyObject_GetAttr(host, s_endpoints);
    if (eps == NULL)
        return -1;
    if (!PyDict_CheckExact(eps)) {
        Py_DECREF(eps);
        PyErr_SetString(PyExc_TypeError, "host.endpoints must be a dict");
        return -1;
    }
    Py_XSETREF(self->endpoints, eps);

    PyObject *port = PyObject_GetAttr(host, s_port_attr);
    if (port == NULL)
        return -1;
    if (!PyObject_TypeCheck(port, (PyTypeObject *)PortCls)) {
        Py_DECREF(port);
        PyErr_SetString(PyExc_TypeError,
                        "HostKernel requires a host with an attached Port");
        return -1;
    }
    Py_XSETREF(self->port, port);

    if ((m = km_new_internal((PyObject *)self, KM_HOST_SEND,
                             "HostKernel.send")) == NULL)
        return -1;
    Py_XSETREF(self->send_m, m);
    if ((m = km_new_internal((PyObject *)self, KM_HOST_POLL,
                             "HostKernel.poll")) == NULL)
        return -1;
    Py_XSETREF(self->poll_m, m);
    if ((m = km_new_internal((PyObject *)self, KM_HOST_SINK,
                             "HostKernel.sink")) == NULL)
        return -1;
    Py_XSETREF(self->sink_m, m);
    return 0;
}

static PyObject *
hk_get_send(HostKernelObject *self, void *closure)
{
    if (self->send_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->send_m);
    return self->send_m;
}

static PyObject *
hk_get_poll(HostKernelObject *self, void *closure)
{
    if (self->poll_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->poll_m);
    return self->poll_m;
}

static PyObject *
hk_get_sink(HostKernelObject *self, void *closure)
{
    if (self->sink_m == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->sink_m);
    return self->sink_m;
}

static PyObject *
hk_get_host(HostKernelObject *self, void *closure)
{
    if (self->host == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->host);
    return self->host;
}

static PyGetSetDef hk_getset[] = {
    {"send", (getter)hk_get_send, NULL, NULL, NULL},
    {"poll", (getter)hk_get_poll, NULL, NULL, NULL},
    {"sink", (getter)hk_get_sink, NULL, NULL, NULL},
    {"host", (getter)hk_get_host, NULL, NULL, NULL},
    {NULL},
};

static PyTypeObject HostKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.HostKernel",
    .tp_basicsize = sizeof(HostKernelObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled NIC enqueue/dequeue/sink fast path for one Host.",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)hk_init,
    .tp_dealloc = (destructor)hk_dealloc,
    .tp_traverse = (traverseproc)hk_traverse,
    .tp_clear = (inquiry)hk_clear,
    .tp_getset = hk_getset,
};

/* ---------------------------------------------------------------------------
 * Module-level functions.
 * ------------------------------------------------------------------------- */

static PyObject *
mod_set_attribution(PyObject *Py_UNUSED(module), PyObject *arg)
{
    PyObject *old = Attribution;
    if (arg == Py_None)
        Attribution = NULL;
    else {
        Py_INCREF(arg);
        Attribution = arg;
    }
    Py_XDECREF(old);
    Py_RETURN_NONE;
}

static PyObject *
mod_build_info(PyObject *Py_UNUSED(module), PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue("{s:s, s:i, s:s}",
                         "backend", "compiled",
                         "abi_version", 1,
                         "compiler",
#if defined(__GNUC__)
                         "gcc"
#elif defined(__clang__)
                         "clang"
#else
                         "unknown"
#endif
                         );
}

/* Pool-aware Packet allocator, mirroring repro.net.packet.alloc_packet.
 *
 * The fast path handles exactly the call shapes the transports use:
 * positional (flow_id, src, dst, kind, [seq, [payload, [ack, [size]]]])
 * plus any of seq/payload/ack/size by keyword. Anything else — unknown
 * keyword, non-PacketKind kind when the size must be derived, oversized
 * payload — defers to the original Python function, which also remains
 * the source of truth for error messages (duplicate arguments etc.). */
static PyObject *
mod_alloc_packet(PyObject *Py_UNUSED(module), PyObject *const *args,
                 Py_ssize_t nargs, PyObject *kwnames)
{
    PyObject *a[8];
    Py_ssize_t i;

    if (nargs < 4 || nargs > 8)
        return PyObject_Vectorcall(AllocPacketPy, args, nargs, kwnames);
    a[4] = LLZero;      /* seq */
    a[5] = LLZero;      /* payload */
    a[6] = LLZero;      /* ack */
    a[7] = NULL;        /* size=None */
    for (i = 0; i < nargs; i++)
        a[i] = args[i];
    if (kwnames != NULL) {
        Py_ssize_t nkw = PyTuple_GET_SIZE(kwnames);
        for (i = 0; i < nkw; i++) {
            PyObject *name = PyTuple_GET_ITEM(kwnames, i);
            Py_ssize_t pos;
            if (name == s_kw_seq)
                pos = 4;
            else if (name == s_kw_payload)
                pos = 5;
            else if (name == s_kw_ack)
                pos = 6;
            else if (name == s_kw_size)
                pos = 7;
            else  /* unknown or non-interned keyword */
                return PyObject_Vectorcall(AllocPacketPy, args, nargs, kwnames);
            if (pos < nargs)  /* duplicates a positional: let Python raise */
                return PyObject_Vectorcall(AllocPacketPy, args, nargs, kwnames);
            a[pos] = args[nargs + i];
        }
    }

    /* Resolve the wire size exactly as Packet.__init__ does. Identity
     * checks against the cached PacketKind members are sound because
     * enum members are singletons; any other kind type falls back. */
    PyObject *size;
    int size_owned = 0;
    if (a[7] != NULL && a[7] != Py_None) {
        size = a[7];
    } else {
        PyObject *kind = a[3];
        if (Py_TYPE(kind) != Py_TYPE(KindDATAObj))
            return PyObject_Vectorcall(AllocPacketPy, args, nargs, kwnames);
        if (kind == KindDATAObj) {
            long long payload;
            if (!ll_read_fast(a[5], &payload))
                return PyObject_Vectorcall(AllocPacketPy, args, nargs, kwnames);
            size = PyLong_FromLongLong(payload + HeaderBytesLL);
            if (size == NULL)
                return NULL;
            size_owned = 1;
        } else if (kind == KindCNPObj) {
            size = CnpBytesObj;
        } else {
            size = AckBytesObj;
        }
    }

    Py_ssize_t n = PyList_GET_SIZE(PacketPool);
    if (n > 0) {
        PyObject *pkt = PyList_GET_ITEM(PacketPool, n - 1);
        if (Py_TYPE(pkt) != (PyTypeObject *)PacketCls) {
            if (size_owned)
                Py_DECREF(size);
            return PyObject_Vectorcall(AllocPacketPy, args, nargs, kwnames);
        }
        /* Steal the tail reference (list keeps its allocation). */
        Py_SET_SIZE(PacketPool, n - 1);
        slot_store_obj(pkt, K_flow_id, a[0]);
        slot_store_obj(pkt, K_src, a[1]);
        slot_store_obj(pkt, K_dst, a[2]);
        slot_store_obj(pkt, K_kind, a[3]);
        slot_store_obj(pkt, K_seq, a[4]);
        slot_store_obj(pkt, K_payload, a[5]);
        slot_store_obj(pkt, K_size, size);
        slot_store_obj(pkt, K_ack, a[6]);
        slot_store_obj(pkt, K_tclass, LLZero);
        slot_store_obj(pkt, K_sack, EmptyTuple);
        slot_store_obj(pkt, K_ecn_capable, Py_False);
        slot_store_obj(pkt, K_ce, Py_False);
        slot_store_obj(pkt, K_ecn_echo, Py_False);
        slot_store_obj(pkt, K_mark, MarkNONEObj);
        slot_store_obj(pkt, K_color, ColorGREENObj);
        slot_store_obj(pkt, K_is_retx, Py_False);
        slot_store_obj(pkt, K_ts_sent, LLZero);
        slot_store_obj(pkt, K_ts_echo, LLZero);
        slot_store_obj(pkt, K_int_records, Py_None);
        slot_store_obj(pkt, K_int_echo, Py_None);
        slot_store_obj(pkt, K_pooled, Py_False);
        if (size_owned)
            Py_DECREF(size);
        return pkt;
    }

    /* Pool miss: fresh Packet, size passed through so __init__ skips
     * re-deriving it. a[] is already in constructor positional order. */
    PyObject *stack[8];
    for (i = 0; i < 7; i++)
        stack[i] = a[i];
    stack[7] = size;
    PyObject *pkt = PyObject_Vectorcall(PacketCls, stack, 8, NULL);
    if (size_owned)
        Py_DECREF(size);
    return pkt;
}

static PyMethodDef module_methods[] = {
    {"set_attribution", mod_set_attribution, METH_O,
     "Install (or clear, with None) the per-callback attribution table."},
    {"build_info", mod_build_info, METH_NOARGS,
     "Build metadata for the compiled backend."},
    {"alloc_packet", (PyCFunction)(void (*)(void))mod_alloc_packet,
     METH_FASTCALL | METH_KEYWORDS,
     "Pool-aware Packet constructor (compiled fast path)."},
    {NULL},
};

/* ---------------------------------------------------------------------------
 * Import-time resolution of Python-side classes and slot offsets.
 * ------------------------------------------------------------------------- */

static PyObject *
import_attr(const char *mod, const char *name)
{
    PyObject *m = PyImport_ImportModule(mod);
    if (m == NULL)
        return NULL;
    PyObject *o = PyObject_GetAttrString(m, name);
    Py_DECREF(m);
    return o;
}

/* Resolve the byte offset of a __slots__ member on a Python class. */
static int
resolve_slot(PyObject *cls, const char *name, Py_ssize_t *out)
{
    PyObject *descr = PyObject_GetAttrString(cls, name);
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_TypeError,
                     "%.100s.%.100s is not a slot member descriptor",
                     ((PyTypeObject *)cls)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    *out = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return 0;
}

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Compiled hot-path backend: C engine event loop and per-instance "
             "switch/host/port kernels (see repro.sim.backend).",
    .m_size = -1,
    .m_methods = module_methods,
};

#define INTERN(var, s)                                    \
    do {                                                  \
        if (((var) = PyUnicode_InternFromString(s)) == NULL) \
            return NULL;                                  \
    } while (0)

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    /* Python-side collaborators (import before type readying so a
     * broken environment fails the import cleanly). */
    if ((SimulationErrorObj = import_attr("repro.sim.engine", "SimulationError")) == NULL)
        return NULL;
    if ((TimerWheelCls = import_attr("repro.sim.timerwheel", "TimerWheel")) == NULL)
        return NULL;
    if ((StepEcnCls = import_attr("repro.switchsim.ecn", "StepEcn")) == NULL)
        return NULL;
    if ((IntRecordCls = import_attr("repro.net.packet", "IntRecord")) == NULL)
        return NULL;
    if ((PacketModule = PyImport_ImportModule("repro.net.packet")) == NULL)
        return NULL;
    if ((PacketPool = PyObject_GetAttrString(PacketModule, "_POOL")) == NULL)
        return NULL;
    if (!PyList_CheckExact(PacketPool)) {
        PyErr_SetString(PyExc_TypeError, "repro.net.packet._POOL must be a list");
        return NULL;
    }
    if ((PortCls = import_attr("repro.net.link", "Port")) == NULL)
        return NULL;
    if (!PyType_Check(PortCls)) {
        PyErr_SetString(PyExc_TypeError, "repro.net.link.Port must be a class");
        return NULL;
    }

    if ((GcGetThreshold = import_attr("gc", "get_threshold")) == NULL ||
        (GcSetThreshold = import_attr("gc", "set_threshold")) == NULL ||
        (GcEnable = import_attr("gc", "enable")) == NULL ||
        (GcDisable = import_attr("gc", "disable")) == NULL ||
        (GcIsEnabled = import_attr("gc", "isenabled")) == NULL)
        return NULL;
    /* Mirrors repro.sim.engine._GC_RUN_THRESHOLDS. */
    if ((GcRunThresholds = Py_BuildValue("(iii)", 100000, 20, 20)) == NULL)
        return NULL;
    if ((EmptyTuple = PyTuple_New(0)) == NULL)
        return NULL;
    if ((LLZero = PyLong_FromLong(0)) == NULL ||
        (LLOne = PyLong_FromLong(1)) == NULL)
        return NULL;
    Attribution = NULL;

    /* Interned attribute names. */
    INTERN(s_kick, "kick");
    INTERN(s_flush, "flush");
    INTERN(s_add, "add");
    INTERN(s_receive, "receive");
    INTERN(s_receive_pause, "receive_pause");
    INTERN(s_poll, "poll");
    INTERN(s_append, "append");
    INTERN(s_popleft, "popleft");
    INTERN(s_port_queues, "_port_queues");
    INTERN(s_rr, "_rr");
    INTERN(s_ecn, "ecn");
    INTERN(s_color_threshold_bytes, "color_threshold_bytes");
    INTERN(s_color_classes, "color_classes");
    INTERN(s_int_enabled, "int_enabled");
    INTERN(s_k_bytes, "k_bytes");
    INTERN(s_should_mark, "should_mark");
    INTERN(s_ecn_marks, "ecn_marks");
    INTERN(s_on_packet, "on_packet");
    INTERN(s_add_int_record, "add_int_record");
    INTERN(s_qualname, "__qualname__");
    INTERN(s_live, "live");
    INTERN(s_pool_enabled, "_pool_enabled");
    INTERN(s_fib, "fib");
    INTERN(s_routes, "_routes");
    INTERN(s_lookup, "lookup");
    INTERN(s_buffer, "buffer");
    INTERN(s_stats, "stats");
    INTERN(s_ports, "ports");
    INTERN(s_drop_m, "_drop");
    INTERN(s_config, "config");
    INTERN(s_pfc, "pfc");
    INTERN(s_on_admit, "on_admit");
    INTERN(s_on_release, "on_release");
    INTERN(s_engine, "engine");
    INTERN(s_nic, "nic");
    INTERN(s_queue_attr, "queue");
    INTERN(s_endpoints, "endpoints");
    INTERN(s_port_attr, "port");
    INTERN(s_cancelled, "cancelled");
    INTERN(s_fn, "fn");
    INTERN(s_args, "args");
    INTERN(s_in_wheel, "in_wheel");
    INTERN(s_color_str, "color");
    INTERN(s_pool_str, "pool");
    INTERN(s_dynamic_str, "dynamic");
    INTERN(s_port_no, "port_no");
    INTERN(s_receive_fast_name, "_receive_fast");
    INTERN(s_poll_fast_name, "_poll_fast");
    INTERN(s_kw_seq, "seq");
    INTERN(s_kw_payload, "payload");
    INTERN(s_kw_ack, "ack");
    INTERN(s_kw_size, "size");
    INTERN(s_tlt_rx, "tlt_rx");
    INTERN(s_done, "done");
    INTERN(s_spec, "spec");
    INTERN(s_state, "state");
    INTERN(s_traffic_class, "traffic_class");
    INTERN(s_plain_color, "plain_color");
    INTERN(s_size_attr, "size");
    INTERN(s_src_attr, "src");
    INTERN(s_dst_attr, "dst");
    INTERN(s_flow_id_attr, "flow_id");
    INTERN(s_host_attr, "host");
    INTERN(s_send_attr, "send");

    /* Slot offsets (resolved, not assumed, so reordering __slots__ in
     * the Python classes can never silently corrupt the fast path). */
    if (resolve_slot(PortCls, "engine", &P_engine) < 0 ||
        resolve_slot(PortCls, "owner", &P_owner) < 0 ||
        resolve_slot(PortCls, "port_no", &P_port_no) < 0 ||
        resolve_slot(PortCls, "peer", &P_peer) < 0 ||
        resolve_slot(PortCls, "rate_bps", &P_rate_bps) < 0 ||
        resolve_slot(PortCls, "delay_ns", &P_delay_ns) < 0 ||
        resolve_slot(PortCls, "busy", &P_busy) < 0 ||
        resolve_slot(PortCls, "paused", &P_paused) < 0 ||
        resolve_slot(PortCls, "down", &P_down) < 0 ||
        resolve_slot(PortCls, "tx_bytes", &P_tx_bytes) < 0 ||
        resolve_slot(PortCls, "tx_packets", &P_tx_packets) < 0 ||
        resolve_slot(PortCls, "_peer_deliver", &P_peer_deliver) < 0 ||
        resolve_slot(PortCls, "wire_seq", &P_wire_seq) < 0 ||
        resolve_slot(PortCls, "_inflight", &P_inflight) < 0 ||
        resolve_slot(PortCls, "_tx_cb", &P_tx_cb) < 0 ||
        resolve_slot(PortCls, "_drain_cb", &P_drain_cb) < 0)
        return NULL;

    PyObject *cls;
    if ((PacketCls = PyObject_GetAttrString(PacketModule, "Packet")) == NULL)
        return NULL;
    cls = PacketCls;
    int bad = (resolve_slot(cls, "flow_id", &K_flow_id) < 0 ||
               resolve_slot(cls, "src", &K_src) < 0 ||
               resolve_slot(cls, "dst", &K_dst) < 0 ||
               resolve_slot(cls, "kind", &K_kind) < 0 ||
               resolve_slot(cls, "seq", &K_seq) < 0 ||
               resolve_slot(cls, "payload", &K_payload) < 0 ||
               resolve_slot(cls, "size", &K_size) < 0 ||
               resolve_slot(cls, "ack", &K_ack) < 0 ||
               resolve_slot(cls, "sack", &K_sack) < 0 ||
               resolve_slot(cls, "tclass", &K_tclass) < 0 ||
               resolve_slot(cls, "ecn_capable", &K_ecn_capable) < 0 ||
               resolve_slot(cls, "ce", &K_ce) < 0 ||
               resolve_slot(cls, "ecn_echo", &K_ecn_echo) < 0 ||
               resolve_slot(cls, "mark", &K_mark) < 0 ||
               resolve_slot(cls, "color", &K_color) < 0 ||
               resolve_slot(cls, "is_retx", &K_is_retx) < 0 ||
               resolve_slot(cls, "ts_sent", &K_ts_sent) < 0 ||
               resolve_slot(cls, "ts_echo", &K_ts_echo) < 0 ||
               resolve_slot(cls, "int_records", &K_int_records) < 0 ||
               resolve_slot(cls, "int_echo", &K_int_echo) < 0 ||
               resolve_slot(cls, "_pooled", &K_pooled) < 0);
    if (bad)
        return NULL;

    /* Collaborators for the compiled alloc_packet fast path. */
    if ((AllocPacketPy = PyObject_GetAttrString(PacketModule, "alloc_packet")) == NULL)
        return NULL;
    if ((cls = PyObject_GetAttrString(PacketModule, "PacketKind")) == NULL)
        return NULL;
    KindDATAObj = PyObject_GetAttrString(cls, "DATA");
    KindCNPObj = PyObject_GetAttrString(cls, "CNP");
    Py_DECREF(cls);
    if (KindDATAObj == NULL || KindCNPObj == NULL)
        return NULL;
    if ((cls = PyObject_GetAttrString(PacketModule, "TltMark")) == NULL)
        return NULL;
    MarkNONEObj = PyObject_GetAttrString(cls, "NONE");
    Py_DECREF(cls);
    if (MarkNONEObj == NULL)
        return NULL;
    if ((cls = PyObject_GetAttrString(PacketModule, "Color")) == NULL)
        return NULL;
    ColorGREENObj = PyObject_GetAttrString(cls, "GREEN");
    Py_DECREF(cls);
    if (ColorGREENObj == NULL)
        return NULL;
    if ((AckBytesObj = PyObject_GetAttrString(PacketModule, "ACK_BYTES")) == NULL ||
        (CnpBytesObj = PyObject_GetAttrString(PacketModule, "CNP_BYTES")) == NULL)
        return NULL;
    {
        PyObject *hb = PyObject_GetAttrString(PacketModule, "HEADER_BYTES");
        if (hb == NULL)
            return NULL;
        HeaderBytesLL = PyLong_AsLongLong(hb);
        Py_DECREF(hb);
        if (HeaderBytesLL == -1 && PyErr_Occurred())
            return NULL;
    }

    /* Collaborators for the receiver fast path. */
    if ((cls = PyObject_GetAttrString(PacketModule, "PacketKind")) == NULL)
        return NULL;
    KindACKObj = PyObject_GetAttrString(cls, "ACK");
    Py_DECREF(cls);
    if (KindACKObj == NULL)
        return NULL;
    if ((cls = PyObject_GetAttrString(PacketModule, "TltMark")) == NULL)
        return NULL;
    MarkIMPDATAObj = PyObject_GetAttrString(cls, "IMPORTANT_DATA");
    MarkIMPCLOCKDATAObj = PyObject_GetAttrString(cls, "IMPORTANT_CLOCK_DATA");
    MarkIMPECHOObj = PyObject_GetAttrString(cls, "IMPORTANT_ECHO");
    MarkIMPCLOCKECHOObj = PyObject_GetAttrString(cls, "IMPORTANT_CLOCK_ECHO");
    MarkCONTROLObj = PyObject_GetAttrString(cls, "CONTROL");
    Py_DECREF(cls);
    if (MarkIMPDATAObj == NULL || MarkIMPCLOCKDATAObj == NULL ||
        MarkIMPECHOObj == NULL || MarkIMPCLOCKECHOObj == NULL ||
        MarkCONTROLObj == NULL)
        return NULL;
    if ((cls = import_attr("repro.transport.base", "ByteStreamReceiver")) == NULL)
        return NULL;
    BSReceiverOnPacket = PyObject_GetAttr(cls, s_on_packet);
    Py_DECREF(cls);
    if (BSReceiverOnPacket == NULL)
        return NULL;
    if ((TltWindowReceiverCls = import_attr("repro.core.window", "TltWindowReceiver")) == NULL)
        return NULL;
    if ((cls = import_attr("repro.core.window", "_RecvState")) == NULL)
        return NULL;
    RecvIDLEObj = PyObject_GetAttrString(cls, "IDLE");
    RecvIMPORTANTObj = PyObject_GetAttrString(cls, "IMPORTANT");
    RecvIMPCLOCKObj = PyObject_GetAttrString(cls, "IMPORTANT_CLOCK");
    Py_DECREF(cls);
    if (RecvIDLEObj == NULL || RecvIMPORTANTObj == NULL || RecvIMPCLOCKObj == NULL)
        return NULL;
    if ((ReceiverBufferCls = import_attr("repro.transport.sack", "ReceiverBuffer")) == NULL)
        return NULL;
    if (resolve_slot(ReceiverBufferCls, "rcv_nxt", &R_rcv_nxt) < 0 ||
        resolve_slot(ReceiverBufferCls, "intervals", &R_intervals) < 0 ||
        resolve_slot(ReceiverBufferCls, "last_seq", &R_last_seq) < 0)
        return NULL;

    if ((cls = import_attr("repro.switchsim.queue", "EgressQueue")) == NULL)
        return NULL;
    bad = (resolve_slot(cls, "items", &Q_items) < 0 ||
           resolve_slot(cls, "occupancy", &Q_occupancy) < 0 ||
           resolve_slot(cls, "red_bytes", &Q_red_bytes) < 0 ||
           resolve_slot(cls, "max_occupancy", &Q_max_occupancy) < 0 ||
           resolve_slot(cls, "max_red_bytes", &Q_max_red_bytes) < 0 ||
           resolve_slot(cls, "dequeued_bytes", &Q_dequeued_bytes) < 0);
    Py_DECREF(cls);
    if (bad)
        return NULL;

    if ((cls = import_attr("repro.switchsim.buffer", "SharedBuffer")) == NULL)
        return NULL;
    bad = (resolve_slot(cls, "capacity", &B_capacity) < 0 ||
           resolve_slot(cls, "alpha", &B_alpha) < 0 ||
           resolve_slot(cls, "used", &B_used) < 0 ||
           resolve_slot(cls, "peak_used", &B_peak_used) < 0);
    Py_DECREF(cls);
    if (bad)
        return NULL;

    /* Types. */
    if (PyType_Ready(&CEventType) < 0 ||
        PyType_Ready(&CEngineType) < 0 ||
        PyType_Ready(&KernelMethodType) < 0 ||
        PyType_Ready(&PortKernelType) < 0 ||
        PyType_Ready(&SwitchKernelType) < 0 ||
        PyType_Ready(&HostKernelType) < 0)
        return NULL;
    /* Mirror Engine.COMPACT_MIN_DEAD (introspected by tests). */
    {
        PyObject *v = PyLong_FromLong(COMPACT_MIN_DEAD_C);
        if (v == NULL)
            return NULL;
        if (PyDict_SetItemString(CEngineType.tp_dict, "COMPACT_MIN_DEAD", v) < 0) {
            Py_DECREF(v);
            return NULL;
        }
        Py_DECREF(v);
        PyType_Modified(&CEngineType);
    }

    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CEngineType);
    if (PyModule_AddObject(module, "CEngine", (PyObject *)&CEngineType) < 0)
        goto error;
    Py_INCREF(&CEventType);
    if (PyModule_AddObject(module, "CEvent", (PyObject *)&CEventType) < 0)
        goto error;
    Py_INCREF(&KernelMethodType);
    if (PyModule_AddObject(module, "KernelMethod", (PyObject *)&KernelMethodType) < 0)
        goto error;
    Py_INCREF(&PortKernelType);
    if (PyModule_AddObject(module, "PortKernel", (PyObject *)&PortKernelType) < 0)
        goto error;
    Py_INCREF(&SwitchKernelType);
    if (PyModule_AddObject(module, "SwitchKernel", (PyObject *)&SwitchKernelType) < 0)
        goto error;
    Py_INCREF(&HostKernelType);
    if (PyModule_AddObject(module, "HostKernel", (PyObject *)&HostKernelType) < 0)
        goto error;
    if (PyModule_AddIntConstant(module, "NEVER", (long)NEVER_LL) < 0)
        goto error;
    return module;
error:
    Py_DECREF(module);
    return NULL;
}
