"""Units and conversion helpers.

Conventions used throughout the simulator:

- **time** — integer nanoseconds (``int``).
- **data sizes** — bytes. The paper quotes buffer/threshold sizes in
  decimal units (e.g. BDP = 40 Gb/s x 80 us = 400 kB), so ``KB`` and
  ``MB`` are decimal here.
- **rates** — bits per second.
"""

from functools import lru_cache

# --- data sizes (decimal, matching the paper's arithmetic) -----------------
KB = 1_000
MB = 1_000_000

# --- rates ------------------------------------------------------------------
MBPS = 1_000_000
GBPS = 1_000_000_000

# --- time -------------------------------------------------------------------
NS_PER_SEC = 1_000_000_000
MICROS = 1_000
MILLIS = 1_000_000
SECONDS = NS_PER_SEC


@lru_cache(maxsize=1024)
def tx_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link, in ns.

    Rounds up so that back-to-back packets never overlap on the wire.
    Memoized: a simulation serializes millions of packets drawn from a
    handful of ``(size, rate)`` combinations (MSS data, pure ACKs).
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * NS_PER_SEC // rate_bps)  # ceil division


def bytes_per_ns(rate_bps: int) -> float:
    """Link rate expressed as bytes per nanosecond."""
    return rate_bps / 8 / NS_PER_SEC


def bdp_bytes(rate_bps: int, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes."""
    return rate_bps * rtt_ns // 8 // NS_PER_SEC
