"""Deterministic discrete-event simulation engine.

All simulated time is kept in integer nanoseconds so runs are exactly
reproducible across platforms (no floating point drift in the clock).
"""

from repro.sim.engine import Engine, Event, SimulationError
from repro.sim.units import (
    GBPS,
    KB,
    MB,
    MBPS,
    MICROS,
    MILLIS,
    NS_PER_SEC,
    SECONDS,
    tx_time_ns,
)

__all__ = [
    "Engine",
    "Event",
    "SimulationError",
    "GBPS",
    "KB",
    "MB",
    "MBPS",
    "MICROS",
    "MILLIS",
    "NS_PER_SEC",
    "SECONDS",
    "tx_time_ns",
]
