"""Profiling harness for simulator runs.

Two complementary views of where a run spends its time:

* **cProfile** — the full Python call graph, dumped in ``pstats``
  format for interactive digging (``python -m pstats <file>``).
* **Per-callback attribution** — the engine's run loop times each
  event callback (:func:`repro.sim.engine.set_attribution`), which
  answers the simulator-specific question "which *event types* are
  hot?" without the relative distortion cProfile's tracing overhead
  introduces on call-heavy code.

:class:`Profiler` is a context manager that captures both and writes
a raw ``.pstats`` dump plus a machine-readable ``.json`` summary::

    with Profiler(tag="fig05") as prof:
        run_scenario(config)
    print(prof.pstats_path, prof.json_path)

``tlt-experiment <id> --profile`` wraps every experiment run in one.
The attribution hook costs two ``perf_counter_ns`` calls per event
while active and *nothing* when off (the run loop binds the table once
per ``run()`` call).

The summary also records **which hot-path backend ran** (see
:mod:`repro.sim.backend`) — a profile is meaningless without knowing
whether the pure-Python or compiled kernels were underneath it — and
breaks out **batched link delivery** (``Port._drain`` and friends,
see :mod:`repro.net.link`) into its own section: one drain call
delivers a whole same-nanosecond burst, so its share of attributed
time is the direct cost of wire delivery, separated from transport
callbacks.
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import time
from typing import Any, Dict, List, Optional

from repro.sim import backend as backend_mod
from repro.sim import engine as engine_mod

#: Attribution-table keys (qualname tails) that are link-delivery
#: drains: the pure-Python ``Port._drain`` and any compiled kernel's
#: ``drain`` binding that dispatches back through Python.
_DRAIN_TAILS = ("_drain", "drain")


def _hotspots(stats: pstats.Stats, top: int) -> List[Dict[str, Any]]:
    """The ``top`` functions by internal time, as plain dicts."""
    rows = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    return rows[:top]


def _callbacks(table: Dict[str, List[int]], top: int) -> List[Dict[str, Any]]:
    """Attribution table as plain dicts, heaviest callbacks first."""
    rows = []
    for name, (calls, total_ns) in table.items():
        rows.append(
            {
                "callback": name,
                "calls": calls,
                "total_ms": round(total_ns / 1e6, 3),
                "mean_us": round(total_ns / calls / 1e3, 3) if calls else 0.0,
            }
        )
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return rows[:top]


def _link_delivery(table: Dict[str, List[int]]) -> Dict[str, Any]:
    """Batched-drain attribution: the wire-delivery slice of the run.

    One ``Port._drain`` call delivers every frame of a same-nanosecond
    due-burst, so its calls count *bursts*; ``share_of_attributed``
    is drain time over all attributed callback time.
    """
    drain_calls = 0
    drain_ns = 0
    rows = []
    for name, (calls, total_ns) in table.items():
        if name.rsplit(".", 1)[-1] in _DRAIN_TAILS:
            drain_calls += calls
            drain_ns += total_ns
            rows.append({"callback": name, "calls": calls,
                         "total_ms": round(total_ns / 1e6, 3)})
    total_ns = sum(ns for _calls, ns in table.values())
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return {
        "drain_calls": drain_calls,
        "drain_ms": round(drain_ns / 1e6, 3),
        "share_of_attributed": round(drain_ns / total_ns, 4) if total_ns else 0.0,
        "callbacks": rows,
    }


#: Per-backend explanation of what the attribution section covers —
#: stamped into the JSON so a reader of a saved profile knows how to
#: interpret the callback table.
_BACKEND_NOTES = {
    "pure": "Python run loop: per-callback attribution covers every event.",
    "compiled": "compiled run loop (repro.sim._ckernel): callbacks are "
                "timed at the dispatch boundary, so compiled kernel rows "
                "(PortKernel.drain, SwitchKernel.receive, ...) are opaque "
                "totals with no Python-level breakdown; cProfile sees only "
                "the extension boundary.",
}


class Profiler:
    """Profile a block of simulator work; write pstats + JSON on exit.

    Parameters
    ----------
    tag:
        Basename stem: output files are ``profile_<tag>.pstats`` and
        ``profile_<tag>.json`` inside ``out_dir``.
    out_dir:
        Output directory (created if missing). Default: CWD.
    top:
        How many entries the JSON summary keeps per section.

    Files are only written when the block exits cleanly; the profile
    data stays available on the object either way.
    """

    def __init__(self, tag: str = "run", out_dir: str = ".", top: int = 25):
        self.tag = tag
        self.out_dir = out_dir
        self.top = top
        self.wall_s: Optional[float] = None
        self.pstats_path: Optional[str] = None
        self.json_path: Optional[str] = None
        self.attribution: Dict[str, List[int]] = {}
        self.backend: Optional[str] = None
        self._profile = cProfile.Profile()
        self._wall0 = 0.0

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Profiler":
        self.attribution.clear()
        # The backend is resolved *at profile time* and stamped into the
        # summary: a saved profile is meaningless without it. Both run
        # loops honor the attribution hook, each through its own module
        # global — install the same table into both so a mixed process
        # (pure tests next to a compiled scenario) attributes everything.
        self.backend = backend_mod.current_backend()
        engine_mod.set_attribution(self.attribution)
        ck = backend_mod._compiled_module()
        if ck is not None:
            ck.set_attribution(self.attribution)
        self._wall0 = time.perf_counter()
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profile.disable()
        self.wall_s = time.perf_counter() - self._wall0
        engine_mod.set_attribution(None)
        ck = backend_mod._compiled_module()
        if ck is not None:
            ck.set_attribution(None)
        if exc_type is None:
            self.write()
        return False

    # -- output ----------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready report (also what ``write`` dumps)."""
        stats = pstats.Stats(self._profile)
        events = sum(calls for calls, _ns in self.attribution.values())
        backend = self.backend or backend_mod.current_backend()
        return {
            "schema": 2,
            "tag": self.tag,
            "wall_s": round(self.wall_s, 4) if self.wall_s is not None else None,
            "backend": {
                "name": backend,
                "compiled_available": backend_mod.compiled_available(),
                "note": _BACKEND_NOTES.get(backend, ""),
            },
            "events_attributed": events,
            "hotspots": _hotspots(stats, self.top),
            "callbacks": _callbacks(self.attribution, self.top),
            "link_delivery": _link_delivery(self.attribution),
        }

    def write(self) -> None:
        """Dump ``profile_<tag>.pstats`` and ``profile_<tag>.json``."""
        os.makedirs(self.out_dir, exist_ok=True)
        self.pstats_path = os.path.join(self.out_dir, f"profile_{self.tag}.pstats")
        self.json_path = os.path.join(self.out_dir, f"profile_{self.tag}.json")
        self._profile.dump_stats(self.pstats_path)
        with open(self.json_path, "w") as fh:
            json.dump(self.summary(), fh, indent=1, sort_keys=True)
            fh.write("\n")
