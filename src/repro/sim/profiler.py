"""Profiling harness for simulator runs.

Two complementary views of where a run spends its time:

* **cProfile** — the full Python call graph, dumped in ``pstats``
  format for interactive digging (``python -m pstats <file>``).
* **Per-callback attribution** — the engine's run loop times each
  event callback (:func:`repro.sim.engine.set_attribution`), which
  answers the simulator-specific question "which *event types* are
  hot?" without the relative distortion cProfile's tracing overhead
  introduces on call-heavy code.

:class:`Profiler` is a context manager that captures both and writes
a raw ``.pstats`` dump plus a machine-readable ``.json`` summary::

    with Profiler(tag="fig05") as prof:
        run_scenario(config)
    print(prof.pstats_path, prof.json_path)

``tlt-experiment <id> --profile`` wraps every experiment run in one.
The attribution hook costs two ``perf_counter_ns`` calls per event
while active and *nothing* when off (the run loop binds the table once
per ``run()`` call).
"""

from __future__ import annotations

import cProfile
import json
import os
import pstats
import time
from typing import Any, Dict, List, Optional

from repro.sim import engine as engine_mod


def _hotspots(stats: pstats.Stats, top: int) -> List[Dict[str, Any]]:
    """The ``top`` functions by internal time, as plain dicts."""
    rows = []
    for (filename, lineno, name), (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append(
            {
                "function": f"{filename}:{lineno}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    rows.sort(key=lambda r: r["tottime_s"], reverse=True)
    return rows[:top]


def _callbacks(table: Dict[str, List[int]], top: int) -> List[Dict[str, Any]]:
    """Attribution table as plain dicts, heaviest callbacks first."""
    rows = []
    for name, (calls, total_ns) in table.items():
        rows.append(
            {
                "callback": name,
                "calls": calls,
                "total_ms": round(total_ns / 1e6, 3),
                "mean_us": round(total_ns / calls / 1e3, 3) if calls else 0.0,
            }
        )
    rows.sort(key=lambda r: r["total_ms"], reverse=True)
    return rows[:top]


class Profiler:
    """Profile a block of simulator work; write pstats + JSON on exit.

    Parameters
    ----------
    tag:
        Basename stem: output files are ``profile_<tag>.pstats`` and
        ``profile_<tag>.json`` inside ``out_dir``.
    out_dir:
        Output directory (created if missing). Default: CWD.
    top:
        How many entries the JSON summary keeps per section.

    Files are only written when the block exits cleanly; the profile
    data stays available on the object either way.
    """

    def __init__(self, tag: str = "run", out_dir: str = ".", top: int = 25):
        self.tag = tag
        self.out_dir = out_dir
        self.top = top
        self.wall_s: Optional[float] = None
        self.pstats_path: Optional[str] = None
        self.json_path: Optional[str] = None
        self.attribution: Dict[str, List[int]] = {}
        self._profile = cProfile.Profile()
        self._wall0 = 0.0

    # -- context manager -------------------------------------------------------

    def __enter__(self) -> "Profiler":
        self.attribution.clear()
        engine_mod.set_attribution(self.attribution)
        self._wall0 = time.perf_counter()
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profile.disable()
        self.wall_s = time.perf_counter() - self._wall0
        engine_mod.set_attribution(None)
        if exc_type is None:
            self.write()
        return False

    # -- output ----------------------------------------------------------------

    def summary(self) -> Dict[str, Any]:
        """The JSON-ready report (also what ``write`` dumps)."""
        stats = pstats.Stats(self._profile)
        events = sum(calls for calls, _ns in self.attribution.values())
        return {
            "schema": 1,
            "tag": self.tag,
            "wall_s": round(self.wall_s, 4) if self.wall_s is not None else None,
            "events_attributed": events,
            "hotspots": _hotspots(stats, self.top),
            "callbacks": _callbacks(self.attribution, self.top),
        }

    def write(self) -> None:
        """Dump ``profile_<tag>.pstats`` and ``profile_<tag>.json``."""
        os.makedirs(self.out_dir, exist_ok=True)
        self.pstats_path = os.path.join(self.out_dir, f"profile_{self.tag}.pstats")
        self.json_path = os.path.join(self.out_dir, f"profile_{self.tag}.json")
        self._profile.dump_stats(self.pstats_path)
        with open(self.json_path, "w") as fh:
            json.dump(self.summary(), fh, indent=1, sort_keys=True)
            fh.write("\n")
