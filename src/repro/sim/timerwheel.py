"""Hierarchical timer wheel for coarse, frequently rescheduled timers.

Retransmission timeouts, PFC pause expiry, and DCQCN rate timers share
a pathological access pattern for a binary heap: they are armed on
every transmission and almost always cancelled or rescheduled before
firing. Pushed straight onto the heap, each re-arm is an O(log n)
insert plus a dead lazy-cancelled entry that lingers until its
deadline drains past.

The wheel parks such timers in hashed slots instead. Three levels with
slot widths of ~8.2 µs, ~524 µs, and ~33.6 ms (shifts 13/19/25 of the
integer-nanosecond clock) cover everything from sub-RTT pause frames
to multi-RTT RTOs; a timer is filed by its deadline's slot index at
the finest level whose span contains it. Insert and cancel are O(1).
A slot is only materialised into the engine's heap ("flushed") when
simulated time is about to reach it — at which point cancelled timers
are simply dropped, having never touched the heap at all.

Determinism: wheel timers carry ordinary engine sequence numbers and
are pushed into the heap as the same ``(time, seq, event)`` tuples
``schedule()`` uses, *before* the engine executes any event at or past
the slot's start. Firing order is therefore bit-identical to a
pure-heap schedule.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine, Event

#: Sentinel for "no occupied wheel slot" (far beyond any simulated time).
NEVER = 1 << 62

#: Bit shifts defining each level's slot width: 2**13 ns ≈ 8.2 µs,
#: 2**19 ns ≈ 524 µs, 2**25 ns ≈ 33.6 ms.
SHIFTS = (13, 19, 25)

#: A timer goes to the finest level whose span exceeds its delay:
#: level 0 below 2**19 ns, level 1 below 2**25 ns, level 2 above.
_SPAN0 = 1 << SHIFTS[1]
_SPAN1 = 1 << SHIFTS[2]


class TimerWheel:
    """Three-level hashed timer wheel feeding an engine's event heap.

    Slots are sparse: per level, a dict maps slot index -> list of
    events, and a small min-heap of occupied indices tracks which slot
    comes due first. The earliest occupied slot start across all
    levels is mirrored into ``engine._wheel_min`` so the engine's run
    loop can test "is a wheel slot due?" with one int compare.
    """

    __slots__ = ("engine", "live", "_levels")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        #: Number of non-cancelled timers currently parked in the wheel.
        self.live = 0
        # Per level: (shift, {slot_idx: [Event, ...]}, min-heap of slot idx).
        self._levels = tuple((shift, {}, []) for shift in SHIFTS)

    def add(self, event: "Event", base: int = -1) -> None:
        """File ``event`` by its deadline.

        ``base`` is the reference time for level selection (defaults
        to the engine clock). A deadline inside the current slot goes
        straight to the heap — the wheel could not buffer it any
        cheaper than the heap can.
        """
        engine = self.engine
        if base < 0:
            base = engine.now
        time = event.time
        delta = time - base
        if delta < _SPAN0:
            level = 0
        elif delta < _SPAN1:
            level = 1
        else:
            level = 2
        shift, buckets, order = self._levels[level]
        idx = time >> shift
        if idx <= base >> shift:
            heappush(engine._queue, (time, event.seq, event))
            return
        bucket = buckets.get(idx)
        if bucket is None:
            buckets[idx] = [event]
            heappush(order, idx)
            start = idx << shift
            if start < engine._wheel_min:
                engine._wheel_min = start
        else:
            bucket.append(event)
        event.in_wheel = True
        self.live += 1

    def flush(self, limit: int) -> None:
        """Materialise every slot whose start is <= ``limit``.

        Live timers with deadlines at or before ``limit`` end up in the
        engine heap; coarser-level timers due later cascade into finer
        slots (level selection is re-based on ``limit``, so a timer
        never re-enters the slot being drained); cancelled timers are
        dropped. Recomputes ``engine._wheel_min`` when done.
        """
        engine = self.engine
        queue = engine._queue
        for level in (2, 1, 0):
            shift, buckets, order = self._levels[level]
            while order and (order[0] << shift) <= limit:
                idx = heappop(order)
                for event in buckets.pop(idx):
                    if event.cancelled:
                        continue
                    self.live -= 1
                    event.in_wheel = False
                    if level:
                        self.add(event, base=limit)
                    else:
                        heappush(queue, (event.time, event.seq, event))
        wheel_min = NEVER
        for shift, _buckets, order in self._levels:
            if order:
                start = order[0] << shift
                if start < wheel_min:
                    wheel_min = start
        engine._wheel_min = wheel_min

    def total_entries(self) -> int:
        """Parked entries including cancelled ones (memory footprint)."""
        return sum(
            len(bucket)
            for _shift, buckets, _order in self._levels
            for bucket in buckets.values()
        )
